"""The GaaS-X engine: vectorized event-accounting simulator.

This is the scalable counterpart of the array-level models in
:mod:`repro.xbar`. It executes the paper's five-phase execution model
(Section III-B) over a whole graph with numpy-vectorized accounting:

* **Initialization / data loading** — a :class:`CrossbarLayout` packs
  sub-shards into CAM/MAC crossbar pairs; programming cost is charged
  per crossbar row, serial within a crossbar, parallel across the 2048
  crossbars, batches serial.
* **CAM search** — one search per (crossbar, searched vertex) group.
* **MAC** — one operation per ``mac_accumulate_limit``-row chunk of a
  group's hit vector; the rows-accumulated histogram of every operation
  is recorded (Figure 13).
* **Special function** — scalar epilogue ops charged per element.

Latency model: within a batch the crossbar pipelines run concurrently,
so a batch's time is the *maximum* per-crossbar serial time; batches
are sequential; loading does not overlap compute. A graph whose edge
set fits one batch is *resident*: it is programmed once and every
subsequent iteration/superstep runs compute-only — the structural
advantage sparse mapping buys (Section II-D).

The algorithms themselves live in :mod:`repro.core.algorithms`; the
engine provides the machinery they share and is validated event-for-
event against the array-level simulator on small graphs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.disk import DiskModel

import numpy as np

from ..config import ArchConfig
from ..energy.ledger import EnergyLedger
from ..errors import AlgorithmError
from ..events import EventLog
from ..graphs.graph import BipartiteGraph, Graph
from ..obs.metrics import observe_event_counts
from ..obs.trace import get_tracer
from .cache import get_cache
from .controller import build_plan, record_plan
from .loader import CrossbarLayout, GroupIndex
from .stats import (
    CFResult,
    ComponentsResult,
    GNNResult,
    PageRankResult,
    RunStats,
    TraversalResult,
)


def default_interval_size(num_vertices: int) -> int:
    """Default shard interval: a 64x64 grid, but never below 128.

    GridGraph-style frameworks pick the interval so the grid has a few
    thousand cells; 64 intervals keeps shard metadata small while still
    giving the streaming order locality.
    """
    return max(128, -(-num_vertices // 64))


def gather_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s+l)`` for each (s, l) pair, vectorized.

    Only one output-sized array is ever materialized: the result starts
    as all-ones, range-opening positions are overwritten with jumps
    from the previous range's last element, and an in-place cumulative
    sum recovers every index. (The naive vectorization repeats the
    starts *and* an ``arange(total)`` — two extra output-sized
    temporaries that dominate peak memory on huge frontiers.)
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    nonzero = lengths > 0
    if not nonzero.all():
        starts = starts[nonzero]
        lengths = lengths[nonzero]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        # Jump from the end of range i-1 (starts[i-1] + lengths[i-1] - 1)
        # to starts[i]; boundaries are distinct because zero-length
        # ranges were dropped above.
        boundaries = np.cumsum(lengths[:-1])
        out[boundaries] = starts[1:] - starts[:-1] - lengths[:-1] + 1
    np.cumsum(out, out=out)
    return out


def chunk_histogram(hits: np.ndarray, limit: int) -> Tuple[np.ndarray, np.ndarray]:
    """Split per-group hit counts into MAC-op chunks.

    Returns ``(ops_per_group, hist)`` where ``hist[i]`` counts MAC ops
    accumulating exactly ``i`` rows (index up to ``limit``).
    """
    hits = np.asarray(hits, dtype=np.int64)
    full = hits // limit
    rem = hits % limit
    ops = full + (rem > 0)
    hist = np.zeros(limit + 1, dtype=np.int64)
    hist[limit] += int(full.sum())
    if rem.size:
        rem_nonzero = rem[rem > 0]
        if rem_nonzero.size:
            hist[: rem_nonzero.max() + 1] += np.bincount(rem_nonzero)
    return ops, hist


def segmented_min(
    targets: np.ndarray,
    values: np.ndarray,
    rank: np.ndarray,
    edges: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-target minimum of ``values`` over an edge subset.

    ``targets`` maps every layout edge to the vertex it delivers to,
    ``values[i]`` is the candidate carried by ``edges[i]``, and
    ``rank`` is the layout's precomputed target-sorted rank
    (:meth:`~repro.core.loader.CrossbarLayout.sort_rank`) — sorting the
    subset by rank clusters equal targets without re-sorting vertex
    ids. Returns ``(touched_vertices, per_vertex_min)``, both sized by
    the number of *distinct* touched vertices (ascending). Cost is
    O(|edges| log |edges|), independent of the graph size — the
    frontier-sparse replacement for an O(num_vertices)
    ``np.minimum.at`` scatter.
    """
    order = np.argsort(rank[edges])
    tgt = targets[edges[order]]
    vals = values[order]
    head = np.empty(tgt.size, dtype=bool)
    head[0] = True
    head[1:] = tgt[1:] != tgt[:-1]
    starts = np.flatnonzero(head)
    return tgt[starts], np.minimum.reduceat(vals, starts)


def unique_vertices(ids: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Sorted unique vertex ids, sized to the input, not the graph.

    ``scratch`` is a caller-owned all-False boolean array over the
    vertex set; it is used (and reset) only when the candidate set is
    large enough that one linear scan beats sorting it. Small inputs
    take a sort-and-mask path instead, keeping the per-superstep cost
    of frontier deduplication O(frontier log frontier) rather than
    O(num_vertices). Both paths return identical arrays.
    """
    if ids.size == 0:
        return ids
    if ids.size * 32 < scratch.size:
        ids = np.sort(ids)
        keep = np.empty(ids.size, dtype=bool)
        keep[0] = True
        keep[1:] = ids[1:] != ids[:-1]
        return ids[keep]
    scratch[ids] = True
    out = np.flatnonzero(scratch)
    scratch[out] = False
    return out


class DeferredSearchAccounting:
    """Batched event/latency accounting for frontier-driven supersteps.

    A traversal superstep with a three-vertex frontier should cost
    three searches' worth of accounting — but even compact per-
    superstep accounting pays a few dozen numpy-call overheads per
    superstep, which dominates on high-diameter graphs (thousands of
    supersteps). This accumulator just records each superstep's
    frontier (the array the algorithm already holds — recording is
    O(1)) and performs the *entire* run's group expansion, event
    accounting, and latency reduction in one vectorized pass at the
    end.

    Latency semantics are identical to per-superstep
    :meth:`GaaSXEngine._account_search_pass`: within a superstep,
    per-crossbar serial time is maxed over each batch and the batch
    maxima are summed; supersteps are summed. Frontiers must hold
    unique in-range vertex ids.

    After :meth:`finalize`, :attr:`total_groups` holds the number of
    CAM searches accounted across all recorded supersteps (callers use
    it for their own per-search buffer-read accounting).
    """

    def __init__(
        self,
        config: ArchConfig,
        layout: "CrossbarLayout",
        groups: "GroupIndex",
        num_vertices: int,
        cols_engaged: int = 1,
    ) -> None:
        self._config = config
        self._layout = layout
        self._groups = groups
        self._num_vertices = num_vertices
        self._cols = cols_engaged
        self._frontiers: list = []
        #: CAM searches accounted by :meth:`finalize` (0 until then).
        self.total_groups = 0

    def add(self, frontier: np.ndarray) -> None:
        """Record one superstep's frontier (unique vertex ids)."""
        if frontier.size:
            self._frontiers.append(frontier)

    def finalize(self, events: EventLog) -> float:
        """Apply all deferred events to ``events``; return the summed
        compute latency of every recorded superstep."""
        if not self._frontiers:
            return 0.0
        config = self._config
        groups = self._groups
        sizes = np.array([f.size for f in self._frontiers], dtype=np.int64)
        verts = np.concatenate(self._frontiers)
        offsets, perm = groups.vertex_index(self._num_vertices)
        starts = offsets[verts]
        counts = offsets[verts + 1] - starts
        gids = perm[gather_ranges(starts, counts)]
        if gids.size == 0:
            return 0.0
        step_of_vert = np.repeat(np.arange(sizes.size), sizes)
        gids_per_step = np.bincount(
            step_of_vert, weights=counts, minlength=sizes.size
        ).astype(np.int64)
        step = np.repeat(np.arange(sizes.size), gids_per_step)
        xbar = groups.xbar[gids]
        hits = groups.count[gids]
        ops, hist = chunk_histogram(hits, config.mac_accumulate_limit)
        total_hits = int(hits.sum())
        total_ops = int(ops.sum())
        self.total_groups = int(gids.size)
        events.cam_searches += int(gids.size)
        events.mac_ops += total_ops
        events.mac_rows_accumulated += total_hits
        events.mac_cell_ops += total_hits * self._cols
        events._grow_hist(hist.size)
        events.mac_rows_hist[: hist.size] += hist
        events.dac_conversions += total_hits
        events.adc_conversions += total_ops * min(
            self._cols, config.mac_cols
        )
        return self._latency(step, xbar, ops, int(sizes.size))

    def _latency(
        self,
        step: np.ndarray,
        xbar: np.ndarray,
        ops: np.ndarray,
        num_steps: int,
    ) -> float:
        """Sum over supersteps of (max over batch of per-crossbar time).

        The common path bins searches and MAC ops onto a dense
        (superstep, crossbar) grid with ``bincount`` — no sorting —
        then folds the crossbar axis into (batch, crossbar-in-batch)
        and maxes it out. Crossbars a superstep never touched hold 0
        and cannot win a max against a touched crossbar's positive
        time; all-idle batches contribute exactly the 0 they would
        have contributed by not appearing at all.
        """
        tech = self._config.tech
        num_crossbars = self._config.num_crossbars
        num_batches = self._layout.num_batches
        width = num_batches * num_crossbars
        cells = num_steps * width
        if xbar.size * 8 >= cells and cells <= 32_000_000:
            # Dense enough that binning onto the full (superstep,
            # crossbar) grid beats sorting the group records.
            key = step * width + xbar
            searches = np.bincount(key, minlength=cells)
            seg_ops = np.bincount(key, weights=ops, minlength=cells)
            grid_time = searches * tech.cam_latency_s + seg_ops * (
                tech.mac_latency_s + tech.input_stage_latency_s
            )
            batch_time = grid_time.reshape(
                num_steps, num_batches, num_crossbars
            ).max(axis=2)
            return float(batch_time.sum())
        # Sparse (or huge-grid) fallback: sort by (superstep, crossbar)
        # and reduce over segment boundaries — O(G log G), O(G) memory.
        order = np.argsort(step * width + xbar, kind="stable")
        step = step[order]
        xbar = xbar[order]
        ops = ops[order]
        seg_head = np.empty(xbar.size, dtype=bool)
        seg_head[0] = True
        seg_head[1:] = (step[1:] != step[:-1]) | (xbar[1:] != xbar[:-1])
        seg_starts = np.flatnonzero(seg_head)
        searches = np.diff(np.append(seg_starts, xbar.size))
        seg_ops = np.add.reduceat(ops, seg_starts)
        seg_time = searches * tech.cam_latency_s + seg_ops * (
            tech.mac_latency_s + tech.input_stage_latency_s
        )
        seg_step = step[seg_starts]
        seg_batch = self._layout.batch_of_xbar(xbar[seg_starts])
        batch_head = np.empty(seg_batch.size, dtype=bool)
        batch_head[0] = True
        batch_head[1:] = (seg_step[1:] != seg_step[:-1]) | (
            seg_batch[1:] != seg_batch[:-1]
        )
        batch_time = np.maximum.reduceat(
            seg_time, np.flatnonzero(batch_head)
        )
        return float(batch_time.sum())


class GaaSXEngine:
    """GaaS-X accelerator bound to one input graph.

    Parameters
    ----------
    graph:
        A :class:`Graph` (PageRank/BFS/SSSP) or :class:`BipartiteGraph`
        (collaborative filtering).
    config:
        Machine configuration; defaults to the paper's Table I design.
    interval_size:
        Shard interval; defaults to a 64x64 grid over the vertex set.
    """

    def __init__(
        self,
        graph: Graph | BipartiteGraph,
        config: Optional[ArchConfig] = None,
        interval_size: Optional[int] = None,
        streaming: bool = False,
        disk: Optional["DiskModel"] = None,
    ) -> None:
        """``streaming=True`` disables the in-place residency model:
        the graph is re-streamed into the crossbars on every pass
        (whole graph per PageRank/CF iteration, active shards per
        traversal superstep). Used by the residency ablation to
        quantify what unified memory/compute arrays buy.

        ``disk`` optionally prices the shard fetches feeding each load;
        loading is then charged ``max(crossbar write time, disk stream
        time)`` since the two pipeline. The default (None) matches the
        paper's evaluation, which — like the accelerator literature it
        compares against — excludes host storage I/O from the modelled
        execution time; the ``abl-disk`` ablation quantifies when that
        assumption breaks.
        """
        self.config = config if config is not None else ArchConfig()
        self.streaming = streaming
        self.disk = disk
        self.ledger = EnergyLedger(self.config.tech)
        if isinstance(graph, BipartiteGraph):
            self.bipartite: Optional[BipartiteGraph] = graph
            self.graph = graph.as_unified_graph()
        else:
            self.bipartite = None
            self.graph = graph
        if interval_size is None:
            interval_size = default_interval_size(self.graph.num_vertices)
        self.interval_size = interval_size
        # Grids and layouts are shared through the process-wide
        # content-keyed cache: engines over equal (graph, interval,
        # order, config) tuples reuse one materialization.
        self._grid = get_cache().grid(self.graph, interval_size)
        self._layouts: dict = {}

    @property
    def attributes_fit_buffer(self) -> bool:
        """Whether one interval's vertex attributes fit the attribute
        buffer — the paper's stated operating assumption (Section
        III-B). Engines with huge intervals would in reality pay
        off-chip attribute traffic the model does not charge."""
        return self.interval_size <= self.config.max_resident_attributes

    # ------------------------------------------------------------------
    # Layout access
    # ------------------------------------------------------------------
    def layout(self, order: str) -> CrossbarLayout:
        """The pass layout for the given shard streaming order (cached)."""
        if order not in self._layouts:
            self._layouts[order] = get_cache().layout(
                self.graph, self._grid, order, self.config
            )
        return self._layouts[order]

    # ------------------------------------------------------------------
    # Accounting helpers shared by the kernels
    # ------------------------------------------------------------------
    def _account_load(
        self,
        layout: CrossbarLayout,
        events: EventLog,
        xbar_mask: Optional[np.ndarray] = None,
        mac_values_per_edge: int = 1,
    ) -> float:
        """Charge one (possibly partial) load and return its latency.

        ``xbar_mask`` restricts the load to a subset of crossbars (the
        superstep case: only shards containing active sources are
        streamed in). ``mac_values_per_edge`` is 0 for BFS (the weight
        column is preset to constant 1, Section IV) and 1 otherwise.
        """
        rows = layout.rows_per_xbar()
        if xbar_mask is not None:
            rows = np.where(xbar_mask, rows, 0)
        edges_loaded = int(rows.sum())
        if edges_loaded == 0:
            return 0.0
        # CAM side: one row write per edge; a TCAM bit is two cells.
        events.cam_row_writes += edges_loaded
        events.cam_cell_writes += edges_loaded * 2 * self.config.cam_width_bits
        # MAC side: one attribute row per edge.
        if mac_values_per_edge > 0:
            events.row_writes += edges_loaded
            events.cell_writes += (
                edges_loaded * mac_values_per_edge * self.config.bit_slices
            )
        # Latency: CAM and MAC arrays program concurrently; the crossbar
        # pair's load time is its row count (both sides write the same
        # number of rows). Crossbars in a batch program in parallel.
        num_batches = layout.num_batches
        batch_rows = np.zeros(num_batches, dtype=np.int64)
        xbar_ids = np.arange(layout.num_xbars)
        np.maximum.at(batch_rows, layout.batch_of_xbar(xbar_ids), rows)
        write_time = (
            float(batch_rows.sum()) * self.config.tech.write_row_latency_s
        )
        if self.disk is None:
            return write_time
        # Disk fetch pipelines with programming; loading takes the max.
        loaded = rows > 0
        seeks = int(np.count_nonzero(loaded[1:] & ~loaded[:-1])) + int(
            loaded[0] if loaded.size else 0
        )
        disk_time = self.disk.stream_time_s(edges_loaded, seeks)
        return max(write_time, disk_time)

    def _account_search_pass(
        self,
        layout: CrossbarLayout,
        groups: GroupIndex,
        events: EventLog,
        group_mask: Optional[np.ndarray] = None,
        cols_engaged: int = 1,
        mac_segments: int = 1,
        group_ids: Optional[np.ndarray] = None,
    ) -> float:
        """Charge one CAM-search + MAC pass and return its latency.

        Every selected group costs one CAM search plus
        ``ceil(hits / limit)`` MAC operations; per-crossbar serial time
        is maxed within each batch. ``mac_segments`` repeats each MAC
        operation when a value spans several 16-column crossbar
        segments (feature vectors wider than one array, Section IV's
        collaborative filtering).

        Selection is either a boolean ``group_mask`` over all groups
        (full-pass kernels) or a compact *sorted* ``group_ids`` array
        (frontier-driven kernels, from
        :meth:`~repro.core.loader.GroupIndex.groups_of`). The compact
        path touches only the selected groups' crossbars — cost
        O(selected groups), not O(all crossbars) — and charges exactly
        the same events and latency as the mask path would.
        """
        compact = group_ids is not None
        if compact:
            xbar = groups.xbar[group_ids]
            hits = groups.count[group_ids]
        elif group_mask is None:
            xbar = groups.xbar
            hits = groups.count
        else:
            xbar = groups.xbar[group_mask]
            hits = groups.count[group_mask]
        if xbar.size == 0:
            return 0.0
        limit = self.config.mac_accumulate_limit
        ops, hist = chunk_histogram(hits, limit)
        ops = ops * mac_segments
        hist = hist * mac_segments
        total_hits = int(hits.sum())
        total_ops = int(ops.sum())
        events.cam_searches += int(xbar.size)
        events.mac_ops += total_ops
        events.mac_rows_accumulated += total_hits * mac_segments
        events.mac_cell_ops += total_hits * cols_engaged
        events._grow_hist(hist.size)
        events.mac_rows_hist[: hist.size] += hist
        events.dac_conversions += total_hits * mac_segments
        events.adc_conversions += total_ops * min(
            cols_engaged, self.config.mac_cols
        )
        # Per-crossbar serial time, maxed per batch.
        tech = self.config.tech
        batch_time = np.zeros(layout.num_batches, dtype=np.float64)
        if compact:
            # group_ids ascending => crossbar ids non-decreasing:
            # segment per touched crossbar, scatter maxima into the
            # touched batches only.
            seg_head = np.empty(xbar.size, dtype=bool)
            seg_head[0] = True
            seg_head[1:] = xbar[1:] != xbar[:-1]
            seg_starts = np.flatnonzero(seg_head)
            searches_per_xbar = np.diff(np.append(seg_starts, xbar.size))
            ops_per_xbar = np.add.reduceat(ops, seg_starts).astype(
                np.float64
            )
            touched = xbar[seg_starts]
        else:
            searches_per_xbar = np.bincount(
                xbar, minlength=layout.num_xbars
            )
            ops_per_xbar = np.bincount(
                xbar,
                weights=ops.astype(np.float64),
                minlength=layout.num_xbars,
            )
            touched = np.arange(layout.num_xbars)
        xbar_time = (
            searches_per_xbar * tech.cam_latency_s
            + ops_per_xbar
            * (tech.mac_latency_s + tech.input_stage_latency_s)
        )
        np.maximum.at(
            batch_time, layout.batch_of_xbar(touched), xbar_time
        )
        return float(batch_time.sum())

    def _active_xbar_mask(
        self,
        layout: CrossbarLayout,
        groups: GroupIndex,
        group_mask: Optional[np.ndarray] = None,
        group_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Crossbars containing at least one selected group."""
        mask = np.zeros(layout.num_xbars, dtype=bool)
        if group_ids is not None:
            mask[groups.xbar[group_ids]] = True
        else:
            mask[groups.xbar[group_mask]] = True
        return mask

    def _finalize(
        self,
        events: EventLog,
        load_time: float,
        compute_time: float,
        passes: int,
        batches: int,
    ) -> RunStats:
        stats = RunStats(
            events=events,
            load_time_s=load_time,
            compute_time_s=compute_time,
            passes=passes,
            batches_loaded=batches,
        )
        stats.energy = self.ledger.price(events, stats.total_time_s)
        # Tracing-gated: building the plan costs a few reductions, so
        # the disabled path never reaches the controller.
        if get_tracer().enabled:
            record_plan(build_plan(stats, self.config), engine="gaasx")
            observe_event_counts(events.as_dict())
        return stats

    # ------------------------------------------------------------------
    # Public kernels (implemented in repro.core.algorithms)
    # ------------------------------------------------------------------
    #: Unified dispatch names accepted by :meth:`run`.
    ALGORITHMS = ("pagerank", "bfs", "sssp", "wcc", "cf", "gnn")

    def run(self, algorithm: str, **params: object):
        """Run any kernel by name with uniform dispatch.

        ``algorithm`` is one of :data:`ALGORITHMS` (``"cf"`` is
        collaborative filtering, ``"gnn"`` the GCN forward pass);
        ``params`` pass through to the kernel method unchanged and the
        kernel's usual typed result comes back. Unknown names raise
        :class:`~repro.errors.AlgorithmError` listing the valid ones —
        this is the single entry point the experiment executor and CLI
        drive kernels through.
        """
        methods = {
            "pagerank": self.pagerank,
            "bfs": self.bfs,
            "sssp": self.sssp,
            "wcc": self.wcc,
            "cf": self.collaborative_filtering,
            "gnn": self.gnn_forward,
        }
        try:
            method = methods[algorithm]
        except KeyError:
            raise AlgorithmError(
                f"unknown algorithm {algorithm!r}; valid names: "
                f"{list(self.ALGORITHMS)}"
            ) from None
        with get_tracer().span(
            "engine.run", category="engine",
            engine="gaasx", algorithm=algorithm,
            vertices=self.graph.num_vertices,
            edges=self.graph.num_edges,
        ):
            return method(**params)

    def pagerank(
        self,
        alpha: float = 0.85,
        iterations: int = 10,
        tolerance: Optional[float] = None,
        personalization: Optional[np.ndarray] = None,
        incremental: bool = False,
        epsilon: float = 1e-6,
        warm_ranks: Optional[np.ndarray] = None,
    ) -> PageRankResult:
        """Run PageRank (Section IV, Equation 3); pass a
        ``personalization`` vector for personalized PageRank.

        ``incremental=True`` runs the delta formulation
        (:mod:`repro.core.algorithms.incremental`): one full seeding
        sweep, then passes that only re-process vertices whose rank
        moved by more than ``epsilon``, optionally warm-started from
        ``warm_ranks``. Results are epsilon-equivalent to the full
        kernel. Incremental mode rides on the reuse layer; when that
        is disabled (``REPRO_REUSE=0``) it falls back to full
        recompute, which keeps the non-reuse path the exact paper
        dataflow. ``personalization`` requires the full kernel.
        """
        if incremental:
            from .reuse import reuse_enabled

            if personalization is not None:
                raise AlgorithmError(
                    "incremental PageRank does not support personalization"
                )
            if reuse_enabled():
                from .algorithms import incremental as inc

                return inc.pagerank(
                    self,
                    alpha=alpha,
                    iterations=iterations,
                    tolerance=tolerance,
                    epsilon=epsilon,
                    warm_ranks=warm_ranks,
                )
        from .algorithms import pagerank

        return pagerank.run(
            self,
            alpha=alpha,
            iterations=iterations,
            tolerance=tolerance,
            personalization=personalization,
        )

    def bfs(self, source: int) -> TraversalResult:
        """Run breadth-first search (Section IV, Equation 2)."""
        from .algorithms import traversal

        return traversal.run(self, source=source, weighted=False)

    def sssp(self, source: int) -> TraversalResult:
        """Run single-source shortest paths (Section IV, Equation 1)."""
        from .algorithms import traversal

        return traversal.run(self, source=source, weighted=True)

    def wcc(
        self,
        warm_labels: Optional[np.ndarray] = None,
        seed_vertices: Optional[np.ndarray] = None,
    ) -> "ComponentsResult":
        """Weakly connected components via min-label propagation.

        Extension kernel (not in the paper's evaluation); uses the
        ternary CAM's two searchable fields to propagate labels in both
        edge directions without a transposed graph copy.

        ``warm_labels``/``seed_vertices`` warm-start incrementally from
        a previous run (see
        :func:`repro.core.algorithms.incremental.wcc_warm_state`).
        """
        from .algorithms import wcc

        return wcc.run(
            self, warm_labels=warm_labels, seed_vertices=seed_vertices
        )

    def gnn_forward(
        self,
        features: np.ndarray,
        weights: Sequence[np.ndarray],
        activation: str = "relu",
    ) -> "GNNResult":
        """GCN-style forward inference (the paper's future-work workload)."""
        from .algorithms import gnn

        return gnn.run(self, features, weights, activation=activation)

    def collaborative_filtering(
        self,
        num_features: int = 32,
        epochs: int = 1,
        learning_rate: float = 0.002,
        regularization: float = 0.02,
        seed: int = 0,
    ) -> CFResult:
        """Run collaborative filtering (Section IV, Equation 5)."""
        if self.bipartite is None:
            raise AlgorithmError(
                "collaborative filtering requires a BipartiteGraph input"
            )
        from .algorithms import cf

        return cf.run(
            self,
            num_features=num_features,
            epochs=epochs,
            learning_rate=learning_rate,
            regularization=regularization,
            seed=seed,
        )
