"""Array-level micro engine: ground truth for the vectorized engine.

:class:`MicroGaaSX` executes PageRank / BFS / SSSP by instantiating a
real :class:`~repro.xbar.cam_array.EdgeCam` and
:class:`~repro.xbar.mac_array.MacCrossbar` pair per occupied crossbar
and driving the actual search / selective-MAC / SFU operations edge by
edge. It is orders of magnitude slower than
:class:`~repro.core.engine.GaaSXEngine` and exists for two reasons:

* **Validation** — on any small graph, its :class:`EventLog` must be
  *identical* (every counter, including the Figure 13 histogram) to
  the vectorized engine's, and its numerical results must agree with
  the golden references. The test suite asserts both.
* **Exposition** — its control flow is a direct transcription of the
  paper's Figures 7 and 9.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import ArchConfig
from ..errors import AlgorithmError
from ..events import EventLog
from ..graphs.graph import Graph
from ..graphs.partition import partition_graph
from ..xbar.cam_array import EdgeCam
from ..xbar.cells import FixedPointFormat
from ..xbar.mac_array import MacCrossbar
from .engine import default_interval_size
from .loader import CrossbarLayout, build_layout


class _CrossbarPair:
    """One loaded CAM/MAC crossbar pair plus its edge bookkeeping."""

    def __init__(
        self,
        config: ArchConfig,
        src: np.ndarray,
        dst: np.ndarray,
        weight: np.ndarray,
        events: EventLog,
        load_weights: bool,
        exact: bool = True,
    ) -> None:
        # Each CAM field spans half the 128-bit row, matching the
        # engine's cam_cell_writes = 2 bits-per-cell-pair x width.
        self.cam = EdgeCam(
            rows=config.cam_rows,
            vertex_bits=config.cam_width_bits // 2,
            events=events,
        )
        self.mac = MacCrossbar(
            rows=config.mac_rows,
            cols=config.mac_cols,
            value_format=FixedPointFormat(
                config.value_bits, config.value_bits // 2
            ),
            cell_bits=config.cell_bits,
            accumulate_limit=config.mac_accumulate_limit,
            adc_bits=config.adc_bits,
            exact=exact,
            events=events,
        )
        self.src = src
        self.dst = dst
        self.weight = weight
        self.cam.load_edges(src, dst)
        k = src.size
        if load_weights:
            self.mac.write(
                np.arange(k), np.zeros(k, dtype=np.int64), weight
            )
        # Constant-1 column for the SpMV-add distance term (preset, no
        # programming events).
        ones = self.mac.stored_values()
        ones[:, 1] = 1.0
        if not load_weights:
            # BFS: the weight column itself is preset to constant 1.
            ones[:k, 0] = 1.0
        self.mac.preset(ones)


class MicroGaaSX:
    """Slow, honest GaaS-X built from the array-level components."""

    def __init__(
        self,
        graph: Graph,
        config: Optional[ArchConfig] = None,
        interval_size: Optional[int] = None,
        quantized: bool = False,
    ) -> None:
        """``quantized=True`` runs the MAC arrays through the honest
        fixed-point pipeline (2-bit cells, bit-serial inputs, ADC)
        instead of exact float arithmetic; results then carry bounded
        quantization error instead of matching references exactly."""
        self.config = config if config is not None else ArchConfig()
        self.quantized = quantized
        self.graph = graph
        if interval_size is None:
            interval_size = default_interval_size(graph.num_vertices)
        self.interval_size = interval_size
        self._grid = partition_graph(graph, interval_size)

    def _build(
        self, order: str, events: EventLog, load_weights: bool
    ) -> Tuple[CrossbarLayout, list]:
        layout = build_layout(self._grid, order, self.config)
        pairs = []
        for x in range(layout.num_xbars):
            sel = layout.xbar_of_edge == x
            pairs.append(
                _CrossbarPair(
                    self.config,
                    layout.src[sel],
                    layout.dst[sel],
                    layout.weight[sel],
                    events,
                    load_weights,
                    exact=not self.quantized,
                )
            )
        return layout, pairs

    # ------------------------------------------------------------------
    def pagerank(
        self, alpha: float = 0.85, iterations: int = 10
    ) -> Tuple[np.ndarray, EventLog]:
        """PageRank driven search-by-search (Figure 9c)."""
        n = self.graph.num_vertices
        events = EventLog()
        out_deg = self.graph.out_degrees().astype(np.float64)
        inv = np.divide(1.0, out_deg, out=np.zeros(n), where=out_deg > 0)
        layout, pairs = self._build("col", events, load_weights=False)
        # MAC column 0 holds 1/OutDeg(src) per edge row (counted as the
        # per-edge attribute write, like the engine's loader).
        for pair in pairs:
            k = pair.src.size
            pair.mac.write(
                np.arange(k), np.zeros(k, dtype=np.int64), inv[pair.src]
            )
        ranks = np.ones(n)
        for _ in range(iterations):
            contrib = np.zeros(n)
            for pair in pairs:
                inputs = np.zeros(self.config.mac_rows)
                inputs[: pair.src.size] = ranks[pair.src]
                events.buffer_reads += int(pair.src.size)  # rank reads
                for v in np.unique(pair.dst):
                    hits = pair.cam.search_dst(int(v))
                    summed = pair.mac.mac(
                        inputs, row_mask=hits, col_mask=np.array([0])
                    )
                    contrib[v] += summed[0]
                    events.sfu_ops += 1  # partial accumulate per group
            ranks = (1.0 - alpha) + alpha * contrib
            events.sfu_ops += 2 * n  # damping affine per vertex
            events.buffer_writes += n
        return ranks, events

    # ------------------------------------------------------------------
    def _traversal(
        self, source: int, weighted: bool
    ) -> Tuple[np.ndarray, EventLog]:
        n = self.graph.num_vertices
        if not 0 <= source < n:
            raise AlgorithmError(f"source {source} out of range [0, {n})")
        events = EventLog()
        _layout, pairs = self._build("row", events, load_weights=weighted)
        dist = np.full(n, np.inf)
        dist[source] = 0.0
        active = np.zeros(n, dtype=bool)
        active[source] = True
        while active.any():
            new_dist = dist.copy()
            improved_any = np.zeros(n, dtype=bool)
            searches = 0
            candidates_count = 0
            for pair in pairs:
                for u in np.unique(pair.src):
                    if not active[u]:
                        continue
                    searches += 1
                    hits = pair.cam.search_src(int(u))
                    # alpha=1 drives the weight column, dist(u) drives
                    # the constant-1 column (Figure 9b).
                    inputs = np.zeros(self.config.mac_cols)
                    inputs[0] = 1.0
                    inputs[1] = dist[u]
                    cand = pair.mac.mac_rowwise(
                        inputs, row_mask=hits, col_mask=np.array([0, 1])
                    )
                    rows = np.flatnonzero(hits)
                    candidates_count += rows.size
                    for r in rows:
                        v = pair.dst[r]
                        if cand[r] < new_dist[v]:
                            new_dist[v] = cand[r]
            improved_any = new_dist < dist
            events.buffer_reads += searches  # dist(u) per search
            events.sfu_ops += candidates_count + int(improved_any.sum())
            events.buffer_writes += int(improved_any.sum())
            dist = new_dist
            active = improved_any
        return dist, events

    def bfs(self, source: int) -> Tuple[np.ndarray, EventLog]:
        """Breadth-first search hop distances."""
        return self._traversal(source, weighted=False)

    def sssp(self, source: int) -> Tuple[np.ndarray, EventLog]:
        """Single-source shortest-path distances."""
        return self._traversal(source, weighted=True)
