"""Array-level micro engine: ground truth for the vectorized engine.

:class:`MicroGaaSX` executes PageRank / BFS / SSSP by instantiating a
real :class:`~repro.xbar.cam_array.EdgeCam` and
:class:`~repro.xbar.mac_array.MacCrossbar` pair per occupied crossbar
and driving the actual search / selective-MAC / SFU operations edge by
edge. It is orders of magnitude slower than
:class:`~repro.core.engine.GaaSXEngine` and exists for two reasons:

* **Validation** — on any small graph, its :class:`EventLog` must be
  *identical* (every counter, including the Figure 13 histogram) to
  the vectorized engine's, and its numerical results must agree with
  the golden references. The test suite asserts both.
* **Exposition** — its control flow is a direct transcription of the
  paper's Figures 7 and 9.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import ArchConfig
from ..errors import AlgorithmError
from ..events import EventLog
from ..graphs.graph import Graph
from ..graphs.partition import partition_graph
from ..xbar.cam_array import CamBank, EdgeCam, pack_edge_keys
from ..xbar.cells import FixedPointFormat
from ..xbar.mac_array import MacBank, MacCrossbar
from .engine import default_interval_size
from .loader import CrossbarLayout, build_layout
from .reuse import (
    frontier_fingerprint,
    get_reuse_cache,
    layout_token,
    reuse_enabled,
)


class _CrossbarPair:
    """One loaded CAM/MAC crossbar pair plus its edge bookkeeping."""

    def __init__(
        self,
        config: ArchConfig,
        src: np.ndarray,
        dst: np.ndarray,
        weight: np.ndarray,
        events: EventLog,
        load_weights: bool,
        search_field: str = "src",
        exact: bool = True,
        hw=None,
        index: int = 0,
        packed=None,
    ) -> None:
        # Each CAM field spans half the 128-bit row, matching the
        # engine's cam_cell_writes = 2 bits-per-cell-pair x width.
        self.cam = EdgeCam(
            rows=config.cam_rows,
            vertex_bits=config.cam_width_bits // 2,
            events=events,
        )
        self.mac = MacCrossbar(
            rows=config.mac_rows,
            cols=config.mac_cols,
            value_format=FixedPointFormat(
                config.value_bits, config.value_bits // 2
            ),
            cell_bits=config.cell_bits,
            accumulate_limit=config.mac_accumulate_limit,
            adc_bits=config.adc_bits,
            exact=exact,
            events=events,
        )
        # Attach per-array counter handles *before* loading: the edge
        # and weight writes below are events, and attribution must see
        # them or the counter-vs-EventLog parity check fails.
        if hw is not None:
            self.cam.cam.hw = hw.register("cam", index)
            self.mac.hw = hw.register("mac", index)
        self.src = src
        self.dst = dst
        self.weight = weight
        # Distinct searched ids with their packed key encodings,
        # precomputed once: every superstep searches a subset of these,
        # never anything else, and the encodings never change. A warm
        # build hands the content-keyed product in via ``packed``.
        if packed is None:
            searched = src if search_field == "src" else dst
            self.search_vertices = np.unique(searched)
            self.search_keys = self.cam.pack_keys(
                self.search_vertices, search_field
            )
        else:
            self.search_vertices, key_words, mask_words = packed
            self.search_keys = (key_words, mask_words)
        self.cam.load_edges(src, dst)
        k = src.size
        if load_weights:
            self.mac.write(
                np.arange(k), np.zeros(k, dtype=np.int64), weight
            )
        # Constant-1 column for the SpMV-add distance term (preset, no
        # programming events).
        ones = self.mac.stored_values()
        ones[:, 1] = 1.0
        if not load_weights:
            # BFS: the weight column itself is preset to constant 1.
            ones[:k, 0] = 1.0
        self.mac.preset(ones)


class MicroGaaSX:
    """Slow, honest GaaS-X built from the array-level components."""

    def __init__(
        self,
        graph: Graph,
        config: Optional[ArchConfig] = None,
        interval_size: Optional[int] = None,
        quantized: bool = False,
        hw=None,
        reuse: Optional[bool] = None,
    ) -> None:
        """``quantized=True`` runs the MAC arrays through the honest
        fixed-point pipeline (2-bit cells, bit-serial inputs, ADC)
        instead of exact float arithmetic; results then carry bounded
        quantization error instead of matching references exactly.

        ``hw`` takes an :class:`repro.obs.hw.HwMonitor`: every crossbar
        pair registers a ``cam``/``mac`` array slot on it and the
        algorithms close one timeline bin per superstep. A monitor
        accumulates, while each run gets a fresh :class:`EventLog` —
        so use one monitor per run to keep the parity check meaningful.

        ``reuse`` overrides the cross-superstep memo layer
        (:mod:`repro.core.reuse`) for this engine; ``None`` follows the
        process default (on unless ``REPRO_REUSE=0``). Memoized runs
        charge identical events — only wall-clock changes.
        """
        self.config = config if config is not None else ArchConfig()
        self.quantized = quantized
        self.hw = hw
        self.graph = graph
        if interval_size is None:
            interval_size = default_interval_size(graph.num_vertices)
        self.interval_size = interval_size
        self._grid = partition_graph(graph, interval_size)
        self._reuse = get_reuse_cache() if reuse_enabled(reuse) else None

    def _token(self, order: str) -> Optional[str]:
        """Reuse-cache namespace of this engine's ``order`` layout."""
        if self._reuse is None:
            return None
        return layout_token(
            self.graph, self.interval_size, order, self.config
        )

    def _build(
        self,
        order: str,
        events: EventLog,
        load_weights: bool,
        search_field: str,
    ) -> Tuple[CrossbarLayout, list]:
        layout = build_layout(self._grid, order, self.config)
        token = self._token(order)
        vertex_bits = self.config.cam_width_bits // 2
        pairs = []
        for x in range(layout.num_xbars):
            sel = layout.xbar_of_edge == x
            src = layout.src[sel]
            dst = layout.dst[sel]
            packed = None
            if token is not None:
                # Content-keyed packed keys: a warm rebuild of the same
                # graph/layout/config skips the np.unique + bit packing
                # per crossbar (and a mutated graph's untouched shards
                # keep theirs via reuse migration).
                searched = src if search_field == "src" else dst

                def _pack(searched=searched):
                    vertices = np.unique(searched)
                    key_words, mask_words = pack_edge_keys(
                        vertices, search_field, vertex_bits
                    )
                    return vertices, key_words, mask_words

                packed = self._reuse.packed_keys(
                    token, x, search_field, _pack
                )
            pairs.append(
                _CrossbarPair(
                    self.config,
                    src,
                    dst,
                    layout.weight[sel],
                    events,
                    load_weights,
                    search_field=search_field,
                    exact=not self.quantized,
                    hw=self.hw,
                    index=x,
                    packed=packed,
                )
            )
        return layout, pairs

    # ------------------------------------------------------------------
    def pagerank(
        self, alpha: float = 0.85, iterations: int = 10
    ) -> Tuple[np.ndarray, EventLog]:
        """PageRank driven search-by-search (Figure 9c)."""
        n = self.graph.num_vertices
        events = EventLog()
        out_deg = self.graph.out_degrees().astype(np.float64)
        inv = np.divide(1.0, out_deg, out=np.zeros(n), where=out_deg > 0)
        layout, pairs = self._build(
            "col", events, load_weights=False, search_field="dst"
        )
        # MAC column 0 holds 1/OutDeg(src) per edge row (counted as the
        # per-edge attribute write, like the engine's loader).
        for pair in pairs:
            k = pair.src.size
            pair.mac.write(
                np.arange(k), np.zeros(k, dtype=np.int64), inv[pair.src]
            )
        ranks = np.ones(n)
        col0 = np.array([0])
        inputs = np.zeros(self.config.mac_rows)
        token = self._token("col")
        if token is not None:
            # PageRank searches every pair's full destination set every
            # iteration: one fingerprint per pair covers the whole run.
            pair_fps = [
                frontier_fingerprint(pair.search_vertices) for pair in pairs
            ]
        for _ in range(iterations):
            contrib = np.zeros(n)
            for i, pair in enumerate(pairs):
                inputs[: pair.src.size] = ranks[pair.src]
                inputs[pair.src.size :] = 0.0
                events.buffer_reads += int(pair.src.size)  # rank reads
                # One batched broadcast: every destination group's CAM
                # search, then its selective MAC, in one call each.
                # The search result is constant across iterations, so
                # after the first it comes from the reuse cache with
                # the identical events charged (charge_search).
                hits = None
                if token is not None:
                    hits = self._reuse.lookup(token, i, pair_fps[i])
                if hits is None:
                    hits = pair.cam.search_packed(*pair.search_keys)
                    if token is not None:
                        self._reuse.store(token, i, pair_fps[i], hits)
                else:
                    pair.cam.charge_search(int(pair.search_vertices.size))
                summed = pair.mac.mac_many(inputs, hits, col_mask=col0)
                contrib[pair.search_vertices] += summed[:, 0]
                events.sfu_ops += int(pair.search_vertices.size)  # accums
            ranks = (1.0 - alpha) + alpha * contrib
            events.sfu_ops += 2 * n  # damping affine per vertex
            events.buffer_writes += n
            if self.hw is not None:
                self.hw.end_step()
        return ranks, events

    # ------------------------------------------------------------------
    def _traversal(
        self, source: int, weighted: bool
    ) -> Tuple[np.ndarray, EventLog]:
        n = self.graph.num_vertices
        if not 0 <= source < n:
            raise AlgorithmError(f"source {source} out of range [0, {n})")
        events = EventLog()
        _layout, pairs = self._build(
            "row", events, load_weights=weighted, search_field="src"
        )
        # Gang the loaded pairs: the hardware searches every crossbar
        # in parallel, so one bank call per superstep resolves all the
        # active sources' searches (and their selective MACs) at once.
        # Banks snapshot array contents — safe here because traversal
        # never reloads a pair after the initial edge load.
        if pairs:
            cam_bank = CamBank([pair.cam.cam for pair in pairs])
            mac_bank = MacBank([pair.mac for pair in pairs])
            all_src = np.concatenate(
                [pair.search_vertices for pair in pairs]
            )
            member = np.repeat(
                np.arange(len(pairs)),
                [pair.search_vertices.size for pair in pairs],
            )
            key_words = np.concatenate(
                [pair.search_keys[0] for pair in pairs], axis=0
            )
            mask_words = pairs[0].search_keys[1]
            dst_rows = np.stack([pair.cam.stored_dst() for pair in pairs])
        else:
            all_src = np.empty(0, dtype=np.int64)
        dist = np.full(n, np.inf)
        dist[source] = 0.0
        active = np.zeros(n, dtype=bool)
        active[source] = True
        cols01 = np.array([0, 1])
        token = self._token("row")
        while active.any():
            new_dist = dist.copy()
            sel = active[all_src]
            srcs = all_src[sel]
            searches = int(srcs.size)
            candidates_count = 0
            if searches:
                mem = member[sel]
                # Supersteps are memoized on the activity mask: a warm
                # re-run of the same query (or an identical frontier in
                # another traversal on this graph) reuses the gang hit
                # matrix and only charges the search events.
                hits = None
                if token is not None:
                    step_fp = frontier_fingerprint(sel)
                    hits = self._reuse.lookup(token, "gang", step_fp)
                if hits is None:
                    hits = cam_bank.search_packed(
                        mem, key_words[sel], mask_words
                    )
                    if token is not None:
                        self._reuse.store(token, "gang", step_fp, hits)
                else:
                    cam_bank.charge_search(mem)
                # alpha=1 drives the weight column, dist(u) drives the
                # constant-1 column (Figure 9b) — one input row per
                # active source, one gang MAC for the whole superstep.
                inputs = np.zeros((searches, self.config.mac_cols))
                inputs[:, 0] = 1.0
                inputs[:, 1] = dist[srcs]
                cand = mac_bank.mac_rowwise_many(
                    mem, inputs, hits, col_mask=cols01
                )
                query, rows = np.nonzero(hits)
                candidates_count = int(rows.size)
                np.minimum.at(
                    new_dist, dst_rows[mem[query], rows], cand[query, rows]
                )
            improved_any = new_dist < dist
            events.buffer_reads += searches  # dist(u) per search
            events.sfu_ops += candidates_count + int(improved_any.sum())
            events.buffer_writes += int(improved_any.sum())
            dist = new_dist
            active = improved_any
            if self.hw is not None:
                self.hw.end_step()
        return dist, events

    def bfs(self, source: int) -> Tuple[np.ndarray, EventLog]:
        """Breadth-first search hop distances."""
        return self._traversal(source, weighted=False)

    def sssp(self, source: int) -> Tuple[np.ndarray, EventLog]:
        """Single-source shortest-path distances."""
        return self._traversal(source, weighted=True)
