"""Data-loading phase: packing sub-shards into crossbar pairs.

Section III-B: the central controller streams sub-shards from disk in
row-major or column-major interval order and fills CAM/MAC crossbar
pairs — 128 edges per pair, (src, dst) into the CAM, the edge attribute
into the MAC row. A crossbar holds edges of exactly one shard (the
controller tracks the vertex range loaded into each crossbar, which is
what lets it route searches), so shard boundaries force a new crossbar.
``num_crossbars`` pairs form one *batch*; batches are streamed
sequentially.

:class:`CrossbarLayout` materializes that assignment for a whole pass
over the graph as flat numpy arrays (edge order, per-edge crossbar id),
plus the grouping indexes the engine's event accounting needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import ArchConfig
from ..errors import ConfigError
from ..graphs.partition import ShardGrid


@dataclass
class GroupIndex:
    """Edges grouped by (crossbar, key-field vertex).

    A *group* is the unit of one CAM search: all edges in one crossbar
    whose searched field (src or dst) equals one vertex. Arrays are
    parallel, one entry per group, ordered by (crossbar, vertex).

    ``edge_perm``/``group_offsets`` recover the member edges: group
    ``g``'s edges are ``edge_perm[group_offsets[g]:group_offsets[g+1]]``
    (indices into the layout's edge arrays).
    """

    xbar: np.ndarray  # crossbar id per group
    vertex: np.ndarray  # searched vertex id per group
    count: np.ndarray  # edges (CAM hits) per group
    edge_perm: np.ndarray
    group_offsets: np.ndarray
    #: lazily built vertex -> groups CSR: (offsets, group-id permutation)
    _vertex_index: Optional[Tuple[np.ndarray, np.ndarray]] = None
    #: lazily built vertex -> member-edges CSR: (offsets, edge ids)
    _edge_index: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def num_groups(self) -> int:
        """Number of (crossbar, vertex) groups."""
        return int(self.xbar.size)

    def vertex_index(self, num_vertices: int) -> Tuple[np.ndarray, np.ndarray]:
        """CSR index from vertex id to the groups searching it (cached).

        Returns ``(offsets, perm)`` with ``offsets`` of length
        ``num_vertices + 1``: the groups whose searched vertex is ``v``
        are ``perm[offsets[v]:offsets[v + 1]]``. This is what lets a
        frontier-driven kernel select its active groups in
        O(frontier + groups selected) instead of masking every group.
        """
        index = self._vertex_index
        if index is None or index[0].size != num_vertices + 1:
            perm = np.argsort(self.vertex, kind="stable")
            offsets = np.zeros(num_vertices + 1, dtype=np.int64)
            counts = np.bincount(self.vertex, minlength=num_vertices)
            np.cumsum(counts, out=offsets[1:])
            index = (offsets, perm)
            self._vertex_index = index
        return index

    def groups_of(self, vertices: np.ndarray, num_vertices: int) -> np.ndarray:
        """Group ids searching any of ``vertices``, in ascending order.

        ``vertices`` must be unique in-range vertex ids (a frontier).
        The result is sorted, so crossbar ids are non-decreasing along
        it (groups are ordered by (crossbar, vertex)).
        """
        from .engine import gather_ranges

        offsets, perm = self.vertex_index(num_vertices)
        starts = offsets[vertices]
        counts = offsets[vertices + 1] - starts
        selected = perm[gather_ranges(starts, counts)]
        selected.sort()
        return selected

    def edge_index(self, num_vertices: int) -> Tuple[np.ndarray, np.ndarray]:
        """CSR index from vertex id straight to its member edges (cached).

        Returns ``(offsets, edges)`` with ``offsets`` of length
        ``num_vertices + 1``: the layout-edge ids whose searched field
        equals ``v`` are ``edges[offsets[v]:offsets[v + 1]]``. This
        collapses the two-hop vertex -> groups -> edges walk into one
        gather for the frontier-driven functional kernels, which do not
        care about crossbar boundaries (accounting, which does, uses
        :meth:`vertex_index`).
        """
        from .engine import gather_ranges

        index = self._edge_index
        if index is None or index[0].size != num_vertices + 1:
            _, vperm = self.vertex_index(num_vertices)
            edges = self.edge_perm[
                gather_ranges(self.group_offsets[vperm], self.count[vperm])
            ]
            counts = np.bincount(
                self.vertex, weights=self.count, minlength=num_vertices
            ).astype(np.int64)
            offsets = np.zeros(num_vertices + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            index = (offsets, edges)
            self._edge_index = index
        return index


@dataclass
class CrossbarLayout:
    """One pass's assignment of edges to crossbars.

    Edge arrays are ordered shard-by-shard (in the requested interval
    order) and, within a shard, by (dst, src) — the paper's sub-shard
    sort. ``xbar_of_edge[e]`` is the crossbar pair holding edge ``e``;
    crossbar ids increase with load order, and crossbar ``x`` belongs to
    batch ``x // config.num_crossbars``.
    """

    config: ArchConfig
    order: str
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    xbar_of_edge: np.ndarray
    num_xbars: int
    _groups: Dict[str, GroupIndex] = field(default_factory=dict)
    _sort_ranks: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_edges(self) -> int:
        """Edges in the pass (the whole graph)."""
        return int(self.src.size)

    @property
    def num_batches(self) -> int:
        """Sequential batch loads needed for one full pass."""
        if self.num_xbars == 0:
            return 0
        return -(-self.num_xbars // self.config.num_crossbars)

    @property
    def resident(self) -> bool:
        """True when the whole graph fits in one batch.

        A resident graph is loaded once and stays in the crossbars for
        every subsequent iteration/superstep — the case where GaaS-X's
        sparse mapping eliminates all re-write traffic.
        """
        return self.num_batches <= 1

    def batch_of_xbar(self, xbar: np.ndarray) -> np.ndarray:
        """Batch index of each crossbar id."""
        return xbar // self.config.num_crossbars

    def rows_per_xbar(self) -> np.ndarray:
        """Occupied rows in each crossbar (<= cam_rows)."""
        return np.bincount(self.xbar_of_edge, minlength=self.num_xbars)

    def sort_rank(self, fieldname: str) -> np.ndarray:
        """Rank of each edge in the stable ``fieldname``-sorted order.

        Computed once per layout and reused every superstep: sorting
        any *subset* of edges by their rank groups equal-field edges
        contiguously (ranks of equal-field edges are consecutive in
        the global order), which is what the segmented-min relaxation
        needs — without re-sorting vertex ids from scratch each time.
        """
        if fieldname not in ("src", "dst"):
            raise ConfigError(f"unknown sort field {fieldname!r}")
        rank = self._sort_ranks.get(fieldname)
        if rank is None:
            keys = self.src if fieldname == "src" else self.dst
            perm = np.argsort(keys, kind="stable")
            rank = np.empty(keys.size, dtype=np.int64)
            rank[perm] = np.arange(keys.size, dtype=np.int64)
            self._sort_ranks[fieldname] = rank
        return rank

    # ------------------------------------------------------------------
    def groups_by(self, fieldname: str) -> GroupIndex:
        """Group edges by (crossbar, src) or (crossbar, dst); cached.

        These groups are the CAM searches of one full pass: destination
        grouping drives PageRank-style gather, source grouping drives
        BFS/SSSP-style scatter.
        """
        if fieldname not in ("src", "dst"):
            raise ConfigError(f"unknown group field {fieldname!r}")
        if fieldname in self._groups:
            return self._groups[fieldname]
        keys = self.src if fieldname == "src" else self.dst
        perm = np.lexsort((keys, self.xbar_of_edge))
        sorted_xbar = self.xbar_of_edge[perm]
        sorted_keys = keys[perm]
        if sorted_keys.size == 0:
            index = GroupIndex(
                xbar=np.empty(0, dtype=np.int64),
                vertex=np.empty(0, dtype=np.int64),
                count=np.empty(0, dtype=np.int64),
                edge_perm=perm,
                group_offsets=np.zeros(1, dtype=np.int64),
            )
            self._groups[fieldname] = index
            return index
        boundary = np.empty(sorted_keys.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = (sorted_xbar[1:] != sorted_xbar[:-1]) | (
            sorted_keys[1:] != sorted_keys[:-1]
        )
        starts = np.flatnonzero(boundary)
        offsets = np.append(starts, sorted_keys.size)
        index = GroupIndex(
            xbar=sorted_xbar[starts],
            vertex=sorted_keys[starts],
            count=np.diff(offsets),
            edge_perm=perm,
            group_offsets=offsets,
        )
        self._groups[fieldname] = index
        return index


def build_layout(
    grid: ShardGrid, order: str, config: ArchConfig
) -> CrossbarLayout:
    """Assign every edge of ``grid`` to a crossbar for one pass.

    ``order`` is ``"row"`` (source-interval major — BFS/SSSP) or
    ``"col"`` (destination-interval major — PageRank), matching the
    paper's algorithm-dependent shard streaming direction.
    """
    rows = config.cam_rows
    src_parts = []
    dst_parts = []
    weight_parts = []
    sizes = []
    for shard in grid.iter_shards(order):
        src_parts.append(shard.src)
        dst_parts.append(shard.dst)
        weight_parts.append(shard.weight)
        sizes.append(shard.num_edges)
    if not sizes:
        empty = np.empty(0, dtype=np.int64)
        return CrossbarLayout(
            config=config,
            order=order,
            src=empty,
            dst=empty,
            weight=np.empty(0, dtype=np.float64),
            xbar_of_edge=empty,
            num_xbars=0,
        )
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    weight = np.concatenate(weight_parts)
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    xbars_per_shard = -(-sizes_arr // rows)
    shard_xbar_offset = np.concatenate(
        [[0], np.cumsum(xbars_per_shard)[:-1]]
    )
    shard_edge_offset = np.concatenate([[0], np.cumsum(sizes_arr)[:-1]])
    shard_of_edge = np.repeat(np.arange(sizes_arr.size), sizes_arr)
    within_shard = np.arange(src.size) - shard_edge_offset[shard_of_edge]
    xbar_of_edge = shard_xbar_offset[shard_of_edge] + within_shard // rows
    return CrossbarLayout(
        config=config,
        order=order,
        src=src,
        dst=dst,
        weight=weight,
        xbar_of_edge=xbar_of_edge,
        num_xbars=int(xbars_per_shard.sum()),
    )
