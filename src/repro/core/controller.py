"""Execution-plan summaries of the five-phase model (Figure 8).

The paper describes GaaS-X runs as five phases — initialization, data
loading, CAM search, MAC operation, special-function execution. The
engine accounts them implicitly inside its kernels; this module
re-derives an explicit per-phase summary (operation counts, energy,
latency attribution) from a finished run's :class:`RunStats`, giving
users the paper's mental model as an inspectable object.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..config import ArchConfig
from ..core.stats import RunStats

#: Canonical names of the five execution phases, in paper order.
PHASE_NAMES = (
    "Initialization",
    "Data loading",
    "CAM search",
    "MAC operation",
    "Special function",
)


@dataclass(frozen=True)
class PhaseSummary:
    """One execution phase's aggregate activity.

    ``occupancy`` and ``adc_saturations`` only carry signal on the MAC
    phase (the accumulation window and the converter live there); every
    other phase reports the zero defaults.
    """

    name: str
    operations: int
    time_s: float
    energy_j: float
    occupancy: float = 0.0
    adc_saturations: int = 0

    def __str__(self) -> str:
        return (
            f"{self.name:<26} ops={self.operations:>14,} "
            f"time={self.time_s * 1e6:>10.2f}us "
            f"energy={self.energy_j * 1e6:>10.2f}uJ"
        )


@dataclass(frozen=True)
class ExecutionPlan:
    """The five-phase decomposition of one run."""

    phases: List[PhaseSummary]
    passes: int

    def phase(self, name: str) -> PhaseSummary:
        """Look up one phase by name."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)

    def render(self) -> str:
        """Text rendering, one line per phase."""
        lines = [str(p) for p in self.phases]
        lines.append(f"(passes: {self.passes})")
        return "\n".join(lines)


def build_plan(
    stats: RunStats, config: Optional[ArchConfig] = None
) -> ExecutionPlan:
    """Derive the Figure 8 phase summary from a finished run.

    Latency attribution: the loading phase owns ``load_time_s``; the
    compute time is split between CAM search and MAC in proportion to
    their serial per-crossbar costs; the SFU phase is reported with
    zero marginal time (its scalar pipeline overlaps the crossbar
    operations in the engine's model).
    """
    config = config if config is not None else ArchConfig()
    tech = config.tech
    events = stats.events
    energy = stats.energy
    # GraphR's config has no mac_accumulate_limit; its 16-row tiles
    # play the same role for the occupancy signal.
    accumulate_limit = getattr(
        config, "mac_accumulate_limit", getattr(config, "tile_size", 16)
    )
    cam_serial = events.cam_searches * tech.cam_latency_s
    mac_serial = events.mac_ops * (
        tech.mac_latency_s + tech.input_stage_latency_s
    )
    total_serial = cam_serial + mac_serial
    if total_serial > 0:
        cam_time = stats.compute_time_s * cam_serial / total_serial
        mac_time = stats.compute_time_s * mac_serial / total_serial
    else:
        cam_time = 0.0
        mac_time = 0.0
    phases = [
        PhaseSummary(
            "Initialization",
            operations=stats.batches_loaded,
            time_s=0.0,
            energy_j=0.0,
        ),
        PhaseSummary(
            "Data loading",
            operations=events.row_writes + events.cam_row_writes,
            time_s=stats.load_time_s,
            energy_j=(energy.write_j if energy is not None else 0.0),
        ),
        PhaseSummary(
            "CAM search",
            operations=events.cam_searches,
            time_s=cam_time,
            energy_j=(energy.cam_j if energy is not None else 0.0),
        ),
        PhaseSummary(
            "MAC operation",
            operations=events.mac_ops,
            time_s=mac_time,
            energy_j=(
                energy.mac_j + energy.adc_j + energy.dac_j
                if energy is not None
                else 0.0
            ),
            occupancy=events.rows_occupancy(
                accumulate_limit
            )["occupancy"],
            adc_saturations=events.adc_saturations,
        ),
        PhaseSummary(
            "Special function",
            operations=events.sfu_ops,
            time_s=0.0,
            energy_j=(
                energy.sfu_j + energy.buffer_j if energy is not None else 0.0
            ),
        ),
    ]
    return ExecutionPlan(phases=phases, passes=stats.passes)


def _phase_slug(name: str) -> str:
    return name.lower().replace(" ", "_")


def record_plan(plan: ExecutionPlan, engine: str = "gaasx") -> None:
    """Publish a finished plan to the tracer and metrics registry.

    Each phase becomes one ``phase``-category span nested under the
    caller's open span (typically the engine-run span). The spans'
    durations are the phases' *modelled* hardware seconds — flagged
    ``"modelled": true`` in their args — laid out sequentially from
    the moment of emission so the five phases render side by side on
    the run's timeline. The same pass folds per-phase operation counts
    and modelled seconds into ``phase.<slug>.*`` metrics.

    Engines call this only when tracing is enabled; building the plan
    costs a few array reductions, so the disabled path must not reach
    here.
    """
    from ..obs.metrics import get_metrics
    from ..obs.trace import PHASE_CATEGORY, get_tracer

    tracer = get_tracer()
    registry = get_metrics()
    cursor = time.time_ns() // 1_000
    for phase in plan.phases:
        dur_us = max(int(phase.time_s * 1e6), 0)
        tracer.add_span(
            phase.name,
            PHASE_CATEGORY,
            ts_us=cursor,
            dur_us=dur_us,
            args={
                "operations": phase.operations,
                "energy_j": phase.energy_j,
                "occupancy": phase.occupancy,
                "adc_saturations": phase.adc_saturations,
                "engine": engine,
                "modelled": True,
            },
        )
        cursor += dur_us
        slug = _phase_slug(phase.name)
        if phase.operations:
            registry.counter(f"phase.{slug}.operations").inc(
                phase.operations
            )
        if phase.time_s:
            registry.counter(f"phase.{slug}.modelled_s").inc(phase.time_s)
        if phase.energy_j:
            registry.counter(f"phase.{slug}.energy_j").inc(phase.energy_j)
