"""Cross-superstep reuse: memoized CAM searches and warm-run caches.

Iterative graph algorithms re-issue nearly identical crossbar work
every superstep: PageRank searches the same destination set against
the same CAM banks each iteration, and a warm serve session replays
the same searches run after run. This module is the process-wide memo
layer that exploits that recurrence:

* **Hit-vector tier** — per ``(content token, array unit, frontier
  fingerprint)`` CAM hit vectors. :class:`~repro.core.micro.MicroGaaSX`
  consults it before every ``search_packed`` broadcast; a hit returns
  the stored matrix and charges exactly the events the search would
  have charged (:meth:`~repro.xbar.cam_array.CamCrossbar.charge_search`),
  so the :class:`~repro.events.EventLog` and per-array hardware
  counters are — by construction — identical with and without
  memoization. Only the packed-word fold is skipped: memoization is a
  simulation speedup, not a hardware semantic change.
* **Packed-key tier** — per ``(content token, array unit, field)``
  ``pack_keys`` products, so content-identical graphs never re-encode
  their searched vertex sets.
* **Invalidation** — content tokens embed the graph fingerprint, so a
  mutated graph can never read a stale entry. :func:`migrate_for_mutation`
  goes further: entries for crossbars whose sub-shard an edge mutation
  did *not* touch are re-keyed to the new token (the warm state
  survives), while entries for touched sub-shards are dropped and
  counted as invalidations.

Counters ``reuse.hits`` / ``reuse.misses`` / ``reuse.invalidations``
are mirrored into the process metrics registry (and therefore the
OpenMetrics export); :func:`reuse_scope` additionally accumulates them
per thread so the serve layer can attach a per-query
``reuse_hit_rate``.

Memoization is on by default; set ``REPRO_REUSE=0`` (or call
:func:`set_reuse_enabled`) to bypass every tier — results and event
counts are identical either way, only wall-clock changes.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

import numpy as np

from ..obs.metrics import get_metrics

if TYPE_CHECKING:  # pragma: no cover
    from ..config import ArchConfig
    from ..graphs.graph import Graph
    from ..graphs.partition import ShardGrid

#: Environment variable: set to ``0``/``false``/``off`` to bypass reuse.
REUSE_ENV = "REPRO_REUSE"

#: Default entry bound of the hit-vector tier.
DEFAULT_MAX_ENTRIES = 4096

#: Default byte bound of the hit-vector tier (64 MiB).
DEFAULT_MAX_BYTES = 64 << 20

_FALSEY = ("0", "false", "off", "no")

# Module-level override: None defers to the environment variable.
_enabled_override: Optional[bool] = None


def reuse_enabled(override: Optional[bool] = None) -> bool:
    """Whether the reuse layer is active.

    Resolution order: explicit ``override`` argument (per-engine knob),
    then :func:`set_reuse_enabled`, then ``$REPRO_REUSE``, then on.
    """
    if override is not None:
        return bool(override)
    if _enabled_override is not None:
        return _enabled_override
    env = os.environ.get(REUSE_ENV)
    if env is not None and env.strip().lower() in _FALSEY:
        return False
    return True


def set_reuse_enabled(value: Optional[bool]) -> None:
    """Force the reuse layer on/off process-wide (``None`` = follow env)."""
    global _enabled_override
    _enabled_override = value


# ----------------------------------------------------------------------
# Fingerprints and tokens
# ----------------------------------------------------------------------
def frontier_fingerprint(values: np.ndarray) -> str:
    """Stable content digest of one frontier (or any key array).

    Dtype and shape are folded in so a boolean activity mask and an id
    array of the same bytes cannot collide.
    """
    arr = np.ascontiguousarray(values)
    h = hashlib.blake2b(digest_size=16)
    h.update(arr.dtype.str.encode("ascii"))
    h.update(str(arr.shape).encode("ascii"))
    h.update(arr.tobytes())
    return h.hexdigest()


def layout_token(
    graph: "Graph",
    interval_size: int,
    order: str,
    config: "ArchConfig",
) -> str:
    """The content identity of one (graph, interval, order, config)
    crossbar layout — the namespace reuse entries live under.

    Embedding the graph fingerprint makes stale reads structurally
    impossible: a mutated graph has a new fingerprint, hence a new
    token, hence an empty namespace (until :func:`migrate_for_mutation`
    carries the still-valid entries over).
    """
    from .cache import config_fingerprint, graph_fingerprint

    return (
        f"{graph_fingerprint(graph)}:{int(interval_size)}:{order}:"
        f"{config_fingerprint(config)}"
    )


# ----------------------------------------------------------------------
# Per-query scopes
# ----------------------------------------------------------------------
class ReuseScope:
    """Hit/miss tally of one scoped region (one serve query)."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _ScopeStack(threading.local):
    def __init__(self) -> None:
        self.stack: list = []


_scopes = _ScopeStack()


class reuse_scope:
    """Context manager accumulating this thread's reuse hits/misses.

    The serve layer wraps each engine run in one, turning the global
    counters into a per-query ``reuse_hit_rate`` without cross-query
    interference (runs execute on worker threads; the scope is
    thread-local)."""

    def __enter__(self) -> ReuseScope:
        self.scope = ReuseScope()
        _scopes.stack.append(self.scope)
        return self.scope

    def __exit__(self, *exc_info) -> None:
        _scopes.stack.remove(self.scope)


def _tally(hit: bool) -> None:
    for scope in _scopes.stack:
        if hit:
            scope.hits += 1
        else:
            scope.misses += 1


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
def _value_bytes(value) -> int:
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, tuple):
        return sum(_value_bytes(part) for part in value)
    return 64  # scalar-ish payloads (EventLog floats, counts)


def _freeze(value):
    """Mark stored arrays read-only so no consumer can corrupt a memo."""
    if isinstance(value, np.ndarray):
        value.flags.writeable = False
    elif isinstance(value, tuple):
        for part in value:
            _freeze(part)
    return value


class ReuseCache:
    """Bounded LRU memo of cross-superstep reusable artifacts.

    Two tiers share the bounds: the hit-vector tier (plus any other
    per-frontier artifact, e.g. the engine's delta-pass group
    expansions) keyed ``(token, unit, fingerprint)``, and the
    packed-key tier keyed ``(token, unit, field)``. ``unit`` is a
    crossbar index for array-level entries or a small string for
    layout-wide ones — the granularity :meth:`migrate` preserves
    across graph mutations.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Tuple[str, object, str], object]" = (
            OrderedDict()
        )
        self._packed: "OrderedDict[Tuple[str, object, str], object]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._lock = threading.RLock()
        # Authoritative plain-int counters (survive registry resets in
        # tests); every increment is mirrored to the process registry
        # so the OpenMetrics export carries them.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def _count(self, name: str, hit: Optional[bool] = None) -> None:
        get_metrics().counter(f"reuse.{name}").inc()
        if hit is not None:
            _tally(hit)

    def _record_hit(self) -> None:
        with self._lock:
            self.hits += 1
        self._count("hits", hit=True)

    def _record_miss(self) -> None:
        with self._lock:
            self.misses += 1
        self._count("misses", hit=False)

    # ------------------------------------------------------------------
    # Hit-vector tier
    # ------------------------------------------------------------------
    def lookup(self, token: str, unit, fingerprint: str):
        """The memoized artifact, or ``None`` (counts a hit or miss)."""
        key = (token, unit, fingerprint)
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
        if value is None:
            self._record_miss()
        else:
            self._record_hit()
        return value

    def store(self, token: str, unit, fingerprint: str, value) -> None:
        """Memoize one artifact (ndarray or tuple of ndarrays)."""
        key = (token, unit, fingerprint)
        size = _value_bytes(value)
        if size > self.max_bytes:
            return  # larger than the whole budget; never cacheable
        _freeze(value)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= _value_bytes(old)
            self._entries[key] = value
            self._bytes += size
            self._evict_locked()

    def _evict_locked(self) -> None:
        while self._entries and (
            len(self._entries) + len(self._packed) > self.max_entries
            or self._bytes > self.max_bytes
        ):
            _key, value = self._entries.popitem(last=False)
            self._bytes -= _value_bytes(value)

    # ------------------------------------------------------------------
    # Packed-key tier
    # ------------------------------------------------------------------
    def packed_keys(self, token: str, unit, field: str, builder):
        """Get-or-create the content-keyed ``pack_keys`` product.

        ``builder`` is a zero-argument callable producing the value on
        a miss. Packed keys are tiny and regeneration is cheap relative
        to hit vectors, so this tier only counts toward the entry
        bound, not the byte budget.
        """
        key = (token, unit, field)
        with self._lock:
            value = self._packed.get(key)
            if value is not None:
                self._packed.move_to_end(key)
        if value is not None:
            self._record_hit()
            return value
        self._record_miss()
        value = _freeze(builder())
        with self._lock:
            self._packed[key] = value
            while len(self._packed) > self.max_entries:
                self._packed.popitem(last=False)
        return value

    # ------------------------------------------------------------------
    # Invalidation and migration
    # ------------------------------------------------------------------
    def invalidate(self, token: Optional[str] = None) -> int:
        """Drop every entry (``token=None``) or one token's namespace.

        Returns the number of dropped entries; each is counted as one
        ``reuse.invalidations``.
        """
        dropped = 0
        with self._lock:
            for store in (self._entries, self._packed):
                doomed = [
                    key for key in store
                    if token is None or key[0] == token
                ]
                for key in doomed:
                    value = store.pop(key)
                    if store is self._entries:
                        self._bytes -= _value_bytes(value)
                    dropped += 1
            self.invalidations += dropped
        if dropped:
            get_metrics().counter("reuse.invalidations").inc(dropped)
        return dropped

    def migrate(
        self,
        old_token: str,
        new_token: str,
        unit_map: Dict[object, object],
    ) -> Tuple[int, int]:
        """Re-key one token's entries after a graph mutation.

        Entries whose unit appears in ``unit_map`` (crossbars holding
        untouched sub-shards) move to ``new_token`` under the mapped
        unit; every other entry under ``old_token`` is dropped and
        counted as an invalidation. Returns ``(carried, dropped)``.
        """
        carried = 0
        dropped = 0
        with self._lock:
            for store in (self._entries, self._packed):
                doomed = [key for key in store if key[0] == old_token]
                for key in doomed:
                    value = store.pop(key)
                    _token, unit, tail = key
                    if unit in unit_map:
                        store[(new_token, unit_map[unit], tail)] = value
                        carried += 1
                    else:
                        if store is self._entries:
                            self._bytes -= _value_bytes(value)
                        dropped += 1
            self.invalidations += dropped
        if dropped:
            get_metrics().counter("reuse.invalidations").inc(dropped)
        return carried, dropped

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every entry without counting invalidations (tests)."""
        with self._lock:
            self._entries.clear()
            self._packed.clear()
            self._bytes = 0

    @property
    def hit_rate(self) -> float:
        """Lifetime fraction of lookups served from the cache."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> Dict[str, object]:
        """Introspection payload (the serve /stats ``reuse`` section)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "hit_rate": round(self.hit_rate, 4),
                "entries": len(self._entries) + len(self._packed),
                "bytes": self._bytes,
            }


# ----------------------------------------------------------------------
# Mutation-aware migration
# ----------------------------------------------------------------------
def affected_shard_keys(
    inserts: Optional[np.ndarray],
    deletes: Optional[np.ndarray],
    interval_size: int,
    num_intervals: int,
) -> set:
    """Row-major shard keys touched by a mutation batch.

    ``inserts``/``deletes`` are ``(k, >=2)`` arrays of (src, dst[, w])
    rows; a shard is touched when any mutated edge lands in its
    (source interval, destination interval) cell.
    """
    keys: set = set()
    for batch in (inserts, deletes):
        if batch is None or len(batch) == 0:
            continue
        arr = np.asarray(batch)
        si = arr[:, 0].astype(np.int64) // interval_size
        dj = arr[:, 1].astype(np.int64) // interval_size
        keys.update(int(k) for k in np.unique(si * num_intervals + dj))
    return keys


def _shard_xbar_table(
    grid: "ShardGrid", order: str, cam_rows: int
) -> Dict[int, Tuple[int, int, int]]:
    """Per shard key: (first crossbar id, crossbar count, edge count)
    under one streaming order — the same shard-major assignment
    :func:`~repro.core.loader.build_layout` produces."""
    keys = grid._keys
    counts = np.diff(grid._starts)
    k = grid.partition.num_intervals
    if order == "col":
        positions = np.lexsort((keys // k, keys % k))
        keys = keys[positions]
        counts = counts[positions]
    xbars = -(-counts // cam_rows)
    offsets = np.concatenate(([0], np.cumsum(xbars)[:-1]))
    return {
        int(key): (int(off), int(num), int(edges))
        for key, off, num, edges in zip(keys, offsets, xbars, counts)
    }


def migrate_for_mutation(
    cache: ReuseCache,
    old_graph: "Graph",
    new_graph: "Graph",
    old_grid: "ShardGrid",
    new_grid: "ShardGrid",
    config: "ArchConfig",
    inserts: Optional[np.ndarray],
    deletes: Optional[np.ndarray],
) -> Dict[str, int]:
    """Sub-shard-granular reuse migration across one graph mutation.

    For each warmed streaming order, crossbars whose sub-shard the
    mutation did not touch (same shard key, same edge count, no
    mutated edge inside) hold byte-identical contents in the new
    layout — their packed keys and hit vectors are re-keyed from the
    old content token to the new one. Touched crossbars, and
    layout-wide entries (e.g. traversal gang searches spanning every
    crossbar), are dropped and counted as ``reuse.invalidations``.
    """
    interval_size = old_grid.partition.interval_size
    touched = affected_shard_keys(
        inserts, deletes, interval_size,
        old_grid.partition.num_intervals,
    )
    carried_total = 0
    dropped_total = 0
    for order in ("col", "row"):
        old_table = _shard_xbar_table(old_grid, order, config.cam_rows)
        new_table = _shard_xbar_table(new_grid, order, config.cam_rows)
        unit_map: Dict[object, object] = {}
        for key, (old_off, old_num, old_edges) in old_table.items():
            if key in touched or key not in new_table:
                continue
            new_off, new_num, new_edges = new_table[key]
            if old_edges != new_edges or old_num != new_num:
                continue  # repacked shard; contents may have shifted
            for slot in range(old_num):
                unit_map[old_off + slot] = new_off + slot
        old_token = layout_token(old_graph, interval_size, order, config)
        new_token = layout_token(new_graph, interval_size, order, config)
        carried, dropped = cache.migrate(old_token, new_token, unit_map)
        carried_total += carried
        dropped_total += dropped
    return {"carried": carried_total, "invalidated": dropped_total}


# ----------------------------------------------------------------------
# Process-global cache
# ----------------------------------------------------------------------
_global_cache: Optional[ReuseCache] = None
_global_lock = threading.Lock()


def get_reuse_cache() -> ReuseCache:
    """The process-wide reuse cache (created on first use)."""
    global _global_cache
    with _global_lock:
        if _global_cache is None:
            _global_cache = ReuseCache()
        return _global_cache


def reset_reuse_cache() -> None:
    """Replace the global cache (tests and pool hygiene)."""
    global _global_cache
    with _global_lock:
        _global_cache = None
