"""Run statistics and result containers for accelerator engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..energy.ledger import EnergyBreakdown
from ..events import EventLog


@dataclass
class RunStats:
    """Everything measured about one engine run.

    ``load_time_s`` is the serialized crossbar-programming time,
    ``compute_time_s`` the serialized CAM/MAC/SFU pipeline time; the
    parallelism model (2048 concurrent crossbars, batches serial) is
    already folded in by the engine. ``passes`` counts iterations
    (PageRank, CF epochs) or supersteps (BFS/SSSP).
    """

    events: EventLog
    load_time_s: float
    compute_time_s: float
    passes: int
    batches_loaded: int
    energy: Optional[EnergyBreakdown] = None

    @property
    def total_time_s(self) -> float:
        """End-to-end modelled execution time."""
        return self.load_time_s + self.compute_time_s

    @property
    def total_energy_j(self) -> float:
        """Total energy (0.0 until the ledger has priced the run)."""
        return self.energy.total_j if self.energy is not None else 0.0

    @property
    def edges_per_second(self) -> float:
        """Not defined without a workload size; engines report this
        separately when meaningful."""
        raise AttributeError(
            "edges_per_second is workload-specific; compute it from the "
            "result's graph"
        )

    def summary(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "total_time_s": self.total_time_s,
            "load_time_s": self.load_time_s,
            "compute_time_s": self.compute_time_s,
            "total_energy_j": self.total_energy_j,
            "passes": self.passes,
            "batches_loaded": self.batches_loaded,
            **self.events.as_dict(),
        }


@dataclass
class PageRankResult:
    """Ranks plus run statistics."""

    ranks: np.ndarray
    iterations: int
    stats: RunStats


@dataclass
class TraversalResult:
    """Distances (np.inf = unreachable) plus run statistics.

    For BFS the distances are hop counts; for SSSP weighted distances.
    """

    distances: np.ndarray
    source: int
    supersteps: int
    stats: RunStats

    def reached(self) -> np.ndarray:
        """Boolean mask of vertices reachable from the source."""
        return np.isfinite(self.distances)


@dataclass
class ComponentsResult:
    """Weakly-connected-component labels plus run statistics.

    ``labels[v]`` is the smallest vertex id in v's component.
    """

    labels: np.ndarray
    supersteps: int
    stats: RunStats

    @property
    def num_components(self) -> int:
        """Number of weakly connected components."""
        return int(np.unique(self.labels).size)

    def component_sizes(self) -> np.ndarray:
        """Sizes of the components, descending."""
        _, counts = np.unique(self.labels, return_counts=True)
        return np.sort(counts)[::-1]


@dataclass
class GNNResult:
    """GCN forward-pass embeddings plus run statistics."""

    embeddings: np.ndarray
    num_layers: int
    stats: RunStats


@dataclass
class CFResult:
    """Collaborative-filtering factor matrices plus run statistics."""

    user_features: np.ndarray
    item_features: np.ndarray
    epochs: int
    stats: RunStats

    def predict(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Predicted rating for each (user, item) pair."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        return np.einsum(
            "ij,ij->i", self.user_features[users], self.item_features[items]
        )

    def rmse(self, ratings_rows: np.ndarray, ratings_cols: np.ndarray,
             ratings_values: np.ndarray) -> float:
        """Root-mean-square prediction error over the given ratings."""
        pred = self.predict(ratings_rows, ratings_cols)
        err = pred - np.asarray(ratings_values, dtype=np.float64)
        return float(np.sqrt(np.mean(err * err))) if err.size else 0.0
