"""GaaS-X: the paper's accelerator — controller, loader, engine, kernels."""

from .cache import (
    LayoutCache,
    config_fingerprint,
    disable_disk_cache,
    enable_disk_cache,
    get_cache,
    graph_fingerprint,
)
from .engine import GaaSXEngine
from .loader import CrossbarLayout, build_layout
from .stats import CFResult, PageRankResult, RunStats, TraversalResult

__all__ = [
    "GaaSXEngine",
    "CrossbarLayout",
    "build_layout",
    "LayoutCache",
    "get_cache",
    "enable_disk_cache",
    "disable_disk_cache",
    "config_fingerprint",
    "graph_fingerprint",
    "RunStats",
    "PageRankResult",
    "TraversalResult",
    "CFResult",
]
