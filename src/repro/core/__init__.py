"""GaaS-X: the paper's accelerator — controller, loader, engine, kernels."""

from .engine import GaaSXEngine
from .loader import CrossbarLayout, build_layout
from .stats import CFResult, PageRankResult, RunStats, TraversalResult

__all__ = [
    "GaaSXEngine",
    "CrossbarLayout",
    "build_layout",
    "RunStats",
    "PageRankResult",
    "TraversalResult",
    "CFResult",
]
