"""Content-keyed memoization for the expensive shared pipeline stages.

Every experiment in the harness replays the same preprocessing before
it can charge a single hardware event: ``partition_graph`` lexsorts the
edge set into a shard grid, and ``build_layout`` packs that grid into
CAM/MAC crossbar pairs. A ``run-all`` sweep rebuilds identical grids
and layouts dozens of times for the same (dataset, interval, order,
config) tuples; this module makes each distinct tuple a one-time cost.

Two tiers:

* an in-process LRU (:class:`LayoutCache`) holding live
  :class:`~repro.graphs.partition.ShardGrid` and
  :class:`~repro.core.loader.CrossbarLayout` objects, and
* an optional on-disk cache of the underlying arrays (``.npz`` files
  under ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), so a *new*
  process — a pool worker, or tomorrow's ``run-all`` — skips the
  sort/pack work entirely.

Keys are content hashes, not object identities: a graph is fingerprinted
by its edge arrays, a config by its field values, so two engines built
from equal inputs share one cached artifact. :data:`CACHE_VERSION` is
folded into every key; bumping it (on any change to the grid/layout
construction algorithms or the serialized format) invalidates all
previously written disk entries at once. Unreadable or stale files are
treated as misses and silently rewritten.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from ..obs.log import get_logger

log = get_logger("repro.cache")

if TYPE_CHECKING:  # pragma: no cover
    from ..config import ArchConfig
    from ..graphs.graph import Graph
    from ..graphs.partition import ShardGrid
    from .loader import CrossbarLayout

#: Bump on any change to grid/layout construction or the on-disk format.
CACHE_VERSION = 1

#: Environment variable overriding the on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_FINGERPRINT_ATTR = "_repro_content_fingerprint"


def default_cache_dir() -> str:
    """Resolved on-disk cache directory (env override, else XDG-ish)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def config_fingerprint(config: "ArchConfig") -> str:
    """Stable content hash of a machine configuration.

    Two configs with equal field values (including nested technology
    parameters) fingerprint identically regardless of object identity.
    """
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def graph_fingerprint(graph: "Graph") -> str:
    """Stable content hash of a graph's vertex count and edge arrays.

    Memoized on the graph instance: the arrays are immutable by
    convention (``load_dataset`` hands out shared instances), so the
    hash is computed once per object.

    The hash is over **canonical little-endian** bytes (``<i8`` ids,
    ``<f8`` weights), never native-order ``tobytes()``: a big-endian
    host, or an int32 edge array from a foreign loader, must fingerprint
    the same content identically or every ``CACHE_VERSION``-keyed
    identity silently forks across hosts. On little-endian hosts with
    canonical dtypes the ``astype`` below is a no-op view, so existing
    disk-cache entries remain valid.
    """
    cached = getattr(graph, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    edges = graph.edges
    h = hashlib.sha256()
    h.update(str(graph.num_vertices).encode("ascii"))
    for arr, dtype in (
        (edges.rows, "<i8"),
        (edges.cols, "<i8"),
        (edges.data, "<f8"),
    ):
        h.update(
            np.ascontiguousarray(arr).astype(dtype, copy=False).tobytes()
        )
    digest = h.hexdigest()[:16]
    seed_fingerprint(graph, digest)
    return digest


def seed_fingerprint(graph: "Graph", digest: str) -> None:
    """Pre-seed a graph's memoized content fingerprint.

    Used by the mmap store so every process that opens the same stored
    file derives identical cache keys without hashing gigabytes of
    memmapped edges first.
    """
    try:
        setattr(graph, _FINGERPRINT_ATTR, digest)
    except AttributeError:  # slotted/frozen graph stand-ins
        pass


def _entry_key(kind: str, *parts: object) -> str:
    payload = "|".join([f"v{CACHE_VERSION}", kind, *map(str, parts)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`LayoutCache`.

    ``*_hits`` count in-process LRU hits, ``*_disk_hits`` count entries
    rehydrated from the on-disk store (a new process's warm start), and
    ``*_misses`` count full recomputations.
    """

    grid_hits: int = 0
    grid_disk_hits: int = 0
    grid_misses: int = 0
    layout_hits: int = 0
    layout_disk_hits: int = 0
    layout_misses: int = 0
    graph_disk_hits: int = 0
    graph_misses: int = 0
    disk_writes: int = 0

    @property
    def hits(self) -> int:
        """All lookups that avoided recomputation."""
        return (
            self.grid_hits
            + self.grid_disk_hits
            + self.layout_hits
            + self.layout_disk_hits
        )

    @property
    def lookups(self) -> int:
        """Total grid + layout lookups."""
        return self.hits + self.grid_misses + self.layout_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either cache tier."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, int]:
        """Counter snapshot for manifests."""
        return dataclasses.asdict(self)

    @staticmethod
    def delta(
        before: Dict[str, int], after: Dict[str, int]
    ) -> Dict[str, int]:
        """Per-counter difference between two ``to_dict`` snapshots."""
        return {k: after[k] - before.get(k, 0) for k in after}


class LayoutCache:
    """Two-tier memo for shard grids and crossbar layouts.

    Parameters
    ----------
    max_grids, max_layouts:
        LRU capacities for the in-process tier.
    disk_dir:
        Directory for the persistent tier; ``None`` disables it.
    """

    def __init__(
        self,
        max_grids: int = 32,
        max_layouts: int = 64,
        disk_dir: Optional[str] = None,
    ) -> None:
        self.max_grids = max_grids
        self.max_layouts = max_layouts
        self.disk_dir = disk_dir
        self.stats = CacheStats()
        self._grids: "OrderedDict[str, ShardGrid]" = OrderedDict()
        self._layouts: "OrderedDict[str, CrossbarLayout]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Grid tier
    # ------------------------------------------------------------------
    def grid(self, graph: "Graph", interval_size: int) -> "ShardGrid":
        """``partition_graph`` memoized by (graph content, interval)."""
        from ..graphs.partition import ShardGrid, partition_graph

        key = _entry_key(
            "grid", graph_fingerprint(graph), int(interval_size)
        )
        with self._lock:
            hit = self._grids.get(key)
            if hit is not None:
                self._grids.move_to_end(key)
                self.stats.grid_hits += 1
                return hit
        arrays = self._disk_load(key)
        if arrays is not None:
            grid = ShardGrid.from_sorted_arrays(
                graph,
                int(interval_size),
                src=arrays["src"],
                dst=arrays["dst"],
                weight=arrays["weight"],
                keys=arrays["keys"],
                starts=arrays["starts"],
            )
            self.stats.grid_disk_hits += 1
        else:
            grid = partition_graph(graph, interval_size)
            self.stats.grid_misses += 1
            self._disk_store(
                key,
                src=grid.src,
                dst=grid.dst,
                weight=grid.weight,
                keys=grid._keys,
                starts=grid._starts,
            )
        with self._lock:
            self._grids[key] = grid
            self._grids.move_to_end(key)
            while len(self._grids) > self.max_grids:
                self._grids.popitem(last=False)
        return grid

    def seed_grid(
        self, graph: "Graph", interval_size: int, grid: "ShardGrid"
    ) -> None:
        """Insert a pre-built grid under its content key.

        The mutation path derives the new graph's grid incrementally
        (:func:`repro.graphs.partition.mutate_grid`); seeding it here
        means the first post-mutation query hits the in-process tier
        instead of re-lexsorting the whole edge set.
        """
        key = _entry_key(
            "grid", graph_fingerprint(graph), int(interval_size)
        )
        with self._lock:
            self._grids[key] = grid
            self._grids.move_to_end(key)
            while len(self._grids) > self.max_grids:
                self._grids.popitem(last=False)
        self._disk_store(
            key,
            src=grid.src,
            dst=grid.dst,
            weight=grid.weight,
            keys=grid._keys,
            starts=grid._starts,
        )

    # ------------------------------------------------------------------
    # Layout tier
    # ------------------------------------------------------------------
    def layout(
        self,
        graph: "Graph",
        grid: "ShardGrid",
        order: str,
        config: "ArchConfig",
    ) -> "CrossbarLayout":
        """``build_layout`` memoized by (graph, interval, order, config)."""
        from .loader import CrossbarLayout, build_layout

        key = _entry_key(
            "layout",
            graph_fingerprint(graph),
            grid.partition.interval_size,
            order,
            config_fingerprint(config),
        )
        with self._lock:
            hit = self._layouts.get(key)
            if hit is not None:
                self._layouts.move_to_end(key)
                self.stats.layout_hits += 1
                return hit
        arrays = self._disk_load(key)
        if arrays is not None:
            layout = CrossbarLayout(
                config=config,
                order=order,
                src=arrays["src"],
                dst=arrays["dst"],
                weight=arrays["weight"],
                xbar_of_edge=arrays["xbar_of_edge"],
                num_xbars=int(arrays["num_xbars"]),
            )
            self.stats.layout_disk_hits += 1
        else:
            layout = build_layout(grid, order, config)
            self.stats.layout_misses += 1
            self._disk_store(
                key,
                src=layout.src,
                dst=layout.dst,
                weight=layout.weight,
                xbar_of_edge=layout.xbar_of_edge,
                num_xbars=np.int64(layout.num_xbars),
            )
        with self._lock:
            self._layouts[key] = layout
            self._layouts.move_to_end(key)
            while len(self._layouts) > self.max_layouts:
                self._layouts.popitem(last=False)
        return layout

    # ------------------------------------------------------------------
    # Graph tier (generated synthetic datasets)
    # ------------------------------------------------------------------
    def cached_graph(self, tag: str, builder) -> "Graph":
        """Memoize an expensive deterministic graph construction.

        ``tag`` must uniquely describe the construction (generator name,
        sizes, seed, post-processing); ``builder`` is a zero-argument
        callable producing the :class:`~repro.graphs.graph.Graph`. Only
        the disk tier applies — callers keep their own in-process memo
        (``load_dataset`` is ``lru_cache``'d) — so a repeated run skips
        R-MAT generation, the sweep's dominant cost at small profiles.
        """
        from ..graphs.coo import COOMatrix
        from ..graphs.graph import Graph

        key = _entry_key("graphobj", tag)
        arrays = self._disk_load(key)
        if arrays is not None:
            coo = COOMatrix(
                arrays["rows"],
                arrays["cols"],
                arrays["data"],
                (int(arrays["num_rows"]), int(arrays["num_cols"])),
            )
            self.stats.graph_disk_hits += 1
            return Graph(coo, name=str(arrays["name"]))
        graph = builder()
        self.stats.graph_misses += 1
        edges = graph.edges
        self._disk_store(
            key,
            rows=edges.rows,
            cols=edges.cols,
            data=edges.data,
            num_rows=np.int64(edges.shape[0]),
            num_cols=np.int64(edges.shape[1]),
            name=np.str_(graph.name),
        )
        return graph

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"{key}.npz")  # type: ignore[arg-type]

    def _disk_load(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        if self.disk_dir is None:
            return None
        path = self._path(key)
        try:
            with np.load(path) as payload:
                return {name: payload[name] for name in payload.files}
        except FileNotFoundError:
            return None  # a plain miss; not worth a log line
        except (OSError, ValueError, KeyError) as exc:
            # Present but unreadable (corrupt, truncated, stale format):
            # still a miss, but one worth surfacing.
            log.warning(
                "cache.disk_entry_unreadable", path=path, error=str(exc)
            )
            return None

    def _disk_store(self, key: str, **arrays: np.ndarray) -> None:
        if self.disk_dir is None:
            return
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            # Write-then-rename so concurrent pool workers never read a
            # half-written entry.
            fd, tmp = tempfile.mkstemp(
                dir=self.disk_dir, suffix=".tmp.npz"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.savez(handle, **arrays)
                os.replace(tmp, self._path(key))
            except BaseException:
                os.unlink(tmp)
                raise
            self.stats.disk_writes += 1
        except OSError as exc:
            # Read-only or full cache dir: stay in-process only.
            log.warning(
                "cache.disk_store_failed", dir=self.disk_dir,
                error=str(exc),
            )

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop the in-process tier (disk entries stay)."""
        with self._lock:
            self._grids.clear()
            self._layouts.clear()


# ----------------------------------------------------------------------
# Process-global cache
# ----------------------------------------------------------------------
_global_cache: Optional[LayoutCache] = None
_global_lock = threading.Lock()


def get_cache() -> LayoutCache:
    """The process-wide cache every engine shares.

    Created lazily with the disk tier *disabled*; call
    :func:`enable_disk_cache` to attach the persistent tier.
    """
    global _global_cache
    with _global_lock:
        if _global_cache is None:
            _global_cache = LayoutCache()
        return _global_cache


def enable_disk_cache(path: Optional[str] = None) -> str:
    """Attach the on-disk tier to the global cache; returns its path.

    Resolution order: explicit ``path``, then ``$REPRO_CACHE_DIR``,
    then ``~/.cache/repro``.
    """
    cache = get_cache()
    cache.disk_dir = path if path is not None else default_cache_dir()
    return cache.disk_dir


def disable_disk_cache() -> None:
    """Detach the on-disk tier from the global cache."""
    get_cache().disk_dir = None


def reset_cache() -> None:
    """Drop the global cache entirely (tests and pool hygiene)."""
    global _global_cache
    with _global_lock:
        _global_cache = None


def stats_snapshot() -> Dict[str, int]:
    """Counter snapshot of the global cache (for manifest deltas)."""
    return get_cache().stats.to_dict()
