"""CPU software-framework cost models: GridGraph, GraphChi, GAPBS.

The paper measures these on a 12-core Xeon Bronze 3104 with RAPL power
(idle subtracted). We model them mechanistically:

* **GridGraph / GraphChi** are *out-of-core* frameworks — they stream
  edge grids/shards from storage every pass, so storage bandwidth is
  the first-order term, plus a per-edge CPU processing cost (decode,
  random vertex access, atomic update). GridGraph's 2-level grid gives
  it selective scheduling at coarse block granularity; GraphChi
  re-streams all shards each pass. This is why the paper's CPU numbers
  are so far (hundreds of times) below the accelerator.
* **GAPBS** is the in-memory, NUMA-tuned reference ("highly optimized
  parallel implementation"); it is DRAM-bound, with direction
  optimization for BFS.

Power figures are the paper's implied *active minus idle* values:
out-of-core runs leave the CPU mostly stalled (~11 W above idle),
GAPBS keeps the memory system busy (~16 W).

Every constant is a documented model parameter, not a measurement; the
EXPERIMENTS.md shape comparison is the calibration record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AlgorithmError
from .workload import BaselineResult, WorkloadTrace


@dataclass(frozen=True)
class GridGraphModel:
    """GridGraph (USENIX ATC'15) on the paper's Xeon host."""

    storage_bandwidth_gbs: float = 0.8  # SATA-SSD streaming
    bytes_per_edge: float = 12.0  # (src, dst, weight) on disk
    cpu_ns_per_edge: float = 5.0  # decode + random vertex access
    #: Selective scheduling works at grid-block granularity: small
    #: frontiers still drag in whole blocks (8x overfetch), and at
    #: least ~2 % of the grid is always touched.
    block_overfetch: float = 8.0
    min_scan_fraction: float = 0.02
    power_w: float = 11.0
    platform: str = "gridgraph"

    def _scanned_edges(self, trace: WorkloadTrace) -> np.ndarray:
        if trace.algorithm == "pagerank":
            return trace.edges_per_pass.astype(np.float64)
        floor = trace.num_edges * self.min_scan_fraction
        scanned = np.maximum(
            trace.edges_per_pass * self.block_overfetch, floor
        )
        return np.minimum(scanned, trace.num_edges)

    def run(self, trace: WorkloadTrace) -> BaselineResult:
        """Price the trace: storage streaming + per-edge CPU work."""
        if trace.algorithm == "cf":
            raise AlgorithmError(
                "the paper runs CF on GraphChi, not GridGraph"
            )
        scanned = self._scanned_edges(trace)
        stream_s = scanned * self.bytes_per_edge / (
            self.storage_bandwidth_gbs * 1e9
        )
        cpu_s = trace.edges_per_pass * self.cpu_ns_per_edge * 1e-9
        time_s = float(np.sum(stream_s + cpu_s))
        return BaselineResult(
            self.platform, trace.algorithm, time_s, time_s * self.power_w
        )


@dataclass(frozen=True)
class GraphChiModel:
    """GraphChi (OSDI'12): shard-based out-of-core, no selective
    scheduling — every pass re-streams every shard."""

    storage_bandwidth_gbs: float = 0.5
    bytes_per_edge: float = 12.0
    cpu_ns_per_edge: float = 8.0  # parallel sliding windows overhead
    cf_flop_ns: float = 0.7  # per feature multiply-add, 12 cores
    power_w: float = 13.0
    platform: str = "graphchi"

    def run(self, trace: WorkloadTrace, num_features: int = 32) -> BaselineResult:
        """Price the trace; CF adds the factor-update FLOP cost."""
        scanned = np.full(
            trace.passes, trace.num_edges, dtype=np.float64
        )
        stream_s = scanned * self.bytes_per_edge / (
            self.storage_bandwidth_gbs * 1e9
        )
        cpu_s = scanned * self.cpu_ns_per_edge * 1e-9
        time_s = float(np.sum(stream_s + cpu_s))
        if trace.algorithm == "cf":
            flops_s = (
                trace.total_edges_processed
                * num_features
                * 2
                * self.cf_flop_ns
                * 1e-9
            )
            time_s += flops_s
        return BaselineResult(
            self.platform, trace.algorithm, time_s, time_s * self.power_w
        )


@dataclass(frozen=True)
class GAPBSModel:
    """GAP Benchmark Suite: in-memory, DRAM-bandwidth-bound."""

    pr_ns_per_edge: float = 4.0  # pull-based SpMV on 1.7 GHz Bronze cores
    bfs_ns_per_edge: float = 3.0  # direction-optimizing
    sssp_ns_per_edge: float = 8.0  # delta-stepping buckets
    cc_ns_per_edge: float = 5.0  # Afforest-style sampling + link
    ns_per_vertex: float = 2.0
    #: Direction optimization caps a superstep's examined edges.
    bfs_bottom_up_fraction: float = 0.3
    power_w: float = 16.0
    platform: str = "gapbs"

    def run(self, trace: WorkloadTrace) -> BaselineResult:
        """Price the trace against the in-memory per-edge costs."""
        if trace.algorithm == "pagerank":
            per_edge = self.pr_ns_per_edge
            edges = trace.edges_per_pass.astype(np.float64)
        elif trace.algorithm == "bfs":
            per_edge = self.bfs_ns_per_edge
            cap = trace.num_edges * self.bfs_bottom_up_fraction
            edges = np.minimum(trace.edges_per_pass, cap)
        elif trace.algorithm == "sssp":
            per_edge = self.sssp_ns_per_edge
            edges = trace.edges_per_pass.astype(np.float64)
        elif trace.algorithm == "cc":
            per_edge = self.cc_ns_per_edge
            edges = trace.edges_per_pass.astype(np.float64)
        else:
            raise AlgorithmError(f"GAPBS has no {trace.algorithm} kernel")
        time_s = float(
            np.sum(edges) * per_edge * 1e-9
            + np.sum(trace.active_vertices_per_pass)
            * self.ns_per_vertex
            * 1e-9
        )
        return BaselineResult(
            self.platform, trace.algorithm, time_s, time_s * self.power_w
        )
