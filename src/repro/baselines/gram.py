"""GRAM and Tesseract baselines: PIM accelerators modelled relatively.

GRAM's architecture (compare-and-swap and parallel-reduction digital
PIM) is radically different from the analog crossbar designs, and the
GaaS-X paper therefore compares against it only through GRAM's
*previously reported* end-to-end improvements relative to GraphR
(Section V-A: "we only compare with GRAM in terms of the previously
reported relative performance and energy improvements with respect to
GraphR for the AZ, WV and LJ datasets"). We take the same route: GRAM's
modelled time/energy is our re-simulated GraphR scaled by GRAM's
published per-algorithm factors.

Tesseract (ISCA'15, DRAM-PIM with per-vault cores) enters the paper the
same indirect way: Section V-B notes GraphR "shows up to 4x performance
and 4x-10x energy efficiency gains over Tesseract", so
:class:`TesseractModel` scales a GraphR run *up* by those published
factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.stats import RunStats
from ..errors import AlgorithmError
from .workload import BaselineResult

#: GRAM's reported end-to-end speedup over GraphR, per algorithm.
GRAM_SPEEDUP_OVER_GRAPHR: Dict[str, float] = {
    "pagerank": 3.2,
    "bfs": 3.0,
    "sssp": 3.0,
}

#: GRAM's reported energy improvement over GraphR, per algorithm.
GRAM_ENERGY_OVER_GRAPHR: Dict[str, float] = {
    "pagerank": 4.2,
    "bfs": 3.9,
    "sssp": 3.9,
}

#: The only datasets GRAM published results for (paper Section V-A).
GRAM_DATASETS = ("AZ", "WV", "LJ")


@dataclass(frozen=True)
class GRAMModel:
    """GRAM modelled relative to a GraphR run on the same workload."""

    speedup_over_graphr: Dict[str, float] = field(
        default_factory=lambda: dict(GRAM_SPEEDUP_OVER_GRAPHR)
    )
    energy_over_graphr: Dict[str, float] = field(
        default_factory=lambda: dict(GRAM_ENERGY_OVER_GRAPHR)
    )
    platform: str = "gram"

    def from_graphr(self, algorithm: str, graphr_stats: RunStats) -> BaselineResult:
        """Derive GRAM's modelled time/energy from a GraphR run."""
        if algorithm not in self.speedup_over_graphr:
            raise AlgorithmError(
                f"GRAM published no {algorithm} results to scale from"
            )
        time_s = graphr_stats.total_time_s / self.speedup_over_graphr[algorithm]
        energy_j = graphr_stats.total_energy_j / self.energy_over_graphr[algorithm]
        return BaselineResult(self.platform, algorithm, time_s, energy_j)


#: GraphR's published mid-range gains over Tesseract ("up to 4x
#: performance and 4x-10x energy efficiency", Section V-B).
TESSERACT_SLOWDOWN_VS_GRAPHR = 3.0
TESSERACT_ENERGY_VS_GRAPHR = 6.0


@dataclass(frozen=True)
class TesseractModel:
    """Tesseract modelled as GraphR scaled by its published deficit."""

    slowdown_vs_graphr: float = TESSERACT_SLOWDOWN_VS_GRAPHR
    energy_vs_graphr: float = TESSERACT_ENERGY_VS_GRAPHR
    platform: str = "tesseract"

    def from_graphr(self, algorithm: str, graphr_stats: RunStats) -> BaselineResult:
        """Derive Tesseract's modelled time/energy from a GraphR run."""
        return BaselineResult(
            self.platform,
            algorithm,
            graphr_stats.total_time_s * self.slowdown_vs_graphr,
            graphr_stats.total_energy_j * self.energy_vs_graphr,
        )
