"""Golden reference implementations (the correctness oracle).

Pure-numpy implementations of the four kernels, written independently
of the accelerator engines (different traversal strategies where
possible — Dijkstra instead of Bellman-Ford for SSSP) so agreement is
meaningful evidence, not shared code agreeing with itself.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from ..errors import AlgorithmError
from ..graphs.csr import CSRMatrix
from ..graphs.graph import BipartiteGraph, Graph


def pagerank(
    graph: Graph,
    alpha: float = 0.85,
    iterations: int = 10,
    tolerance: Optional[float] = None,
) -> np.ndarray:
    """Unnormalized PageRank per the paper's Equation 3.

    ``rank(v) = (1 - alpha) + alpha * sum_{(u,v) in E} rank(u)/outdeg(u)``
    iterated synchronously from all-ones.
    """
    n = graph.num_vertices
    csr = graph.csr()
    out_deg = csr.row_degrees().astype(np.float64)
    inv = np.divide(1.0, out_deg, out=np.zeros(n), where=out_deg > 0)
    # PageRank runs over the *binary* adjacency: edge weights play no
    # role in Equation 3, only connectivity and out-degrees do.
    adjacency = CSRMatrix(
        csr.indptr, csr.indices, np.ones(csr.nnz), csr.shape
    )
    ranks = np.ones(n)
    for _ in range(iterations):
        new_ranks = (1.0 - alpha) + alpha * adjacency.spmv_transposed(
            ranks * inv
        )
        if tolerance is not None and np.max(np.abs(new_ranks - ranks)) < tolerance:
            ranks = new_ranks
            break
        ranks = new_ranks
    return ranks


def bfs(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source`` (np.inf where unreachable).

    Level-synchronous frontier expansion over the CSR adjacency.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} out of range [0, {n})")
    csr = graph.csr()
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neighbors = np.concatenate(
            [csr.row(int(v))[0] for v in frontier]
        ) if frontier.size else np.empty(0, dtype=np.int64)
        fresh = np.unique(neighbors[~np.isfinite(dist[neighbors])]) if neighbors.size else neighbors
        dist[fresh] = level
        frontier = fresh
    return dist


def sssp(graph: Graph, source: int) -> np.ndarray:
    """Dijkstra shortest-path distances (np.inf where unreachable).

    A different algorithm family than the engines' Bellman-Ford
    wavefront, on purpose.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} out of range [0, {n})")
    if graph.num_edges and graph.weights.min() < 0:
        raise AlgorithmError("Dijkstra requires non-negative weights")
    csr = graph.csr()
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        cols, weights = csr.row(u)
        for v, w in zip(cols, weights):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    return dist


def collaborative_filtering(
    bipartite: BipartiteGraph,
    num_features: int = 32,
    epochs: int = 1,
    learning_rate: float = 0.002,
    regularization: float = 0.02,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Matrix factorization per the paper's Equation 5.

    Synchronous item-then-user updates each epoch, matching the GaaS-X
    kernel's declared semantics. Returns (user_features,
    item_features).
    """
    from ..core.algorithms.cf import initial_factors

    ratings = bipartite.ratings
    users, items, values = ratings.rows, ratings.cols, ratings.data
    p, q = initial_factors(
        bipartite.num_users, bipartite.num_items, num_features, seed
    )
    item_deg = np.bincount(items, minlength=q.shape[0]).astype(np.float64)
    user_deg = np.bincount(users, minlength=p.shape[0]).astype(np.float64)
    for _ in range(epochs):
        err = values - np.einsum("ij,ij->i", p[users], q[items])
        grad_q = np.zeros_like(q)
        np.add.at(grad_q, items, err[:, None] * p[users])
        q = q + learning_rate * (
            grad_q - regularization * item_deg[:, None] * q
        )
        err = values - np.einsum("ij,ij->i", p[users], q[items])
        grad_p = np.zeros_like(p)
        np.add.at(grad_p, users, err[:, None] * q[items])
        p = p + learning_rate * (
            grad_p - regularization * user_deg[:, None] * p
        )
    return p, q
