"""Baselines: golden references, GraphR/GRAM PIM models, CPU/GPU models."""

from . import reference
from .cpu import GAPBSModel, GraphChiModel, GridGraphModel
from .gpu import CuMFModel, GunrockModel
from .gram import GRAMModel
from .graphr import GraphREngine
from .workload import WorkloadTrace, trace_cf, trace_pagerank, trace_traversal

__all__ = [
    "reference",
    "GraphREngine",
    "GRAMModel",
    "GridGraphModel",
    "GraphChiModel",
    "GAPBSModel",
    "GunrockModel",
    "CuMFModel",
    "WorkloadTrace",
    "trace_pagerank",
    "trace_traversal",
    "trace_cf",
]
