"""GraphR baseline: dense-tile ReRAM PIM graph accelerator (HPCA'18).

Re-simulated on the same crossbar substrate and technology parameters
as GaaS-X, exactly as the paper does (Section V-A): same number of
parallel compute arrays, same MAC/write costs — the differences are
purely the dense sub-block mapping and the absence of CAM-driven
selective activation.
"""

from .engine import GraphREngine
from .tiles import TileLayout, build_tile_layout

__all__ = ["GraphREngine", "TileLayout", "build_tile_layout"]
