"""Array-level GraphR micro engine: ground truth for the baseline.

Mirrors :class:`repro.core.micro.MicroGaaSX` for the GraphR side: each
non-empty dense tile is materialized inside a real
:class:`~repro.xbar.mac_array.MacCrossbar` (sparse-to-dense conversion
with genuine programming events), PageRank runs one full-tile MAC per
tile, and BFS/SSSP stream each tile's rows one MAC at a time — the
exact cost structure :class:`GraphREngine` accounts vectorized. The
test suite asserts the two produce identical event logs and identical
results on small graphs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ...config import GraphRConfig
from ...errors import AlgorithmError
from ...events import EventLog
from ...graphs.graph import Graph
from ...xbar.mac_array import MacCrossbar
from .engine import COORD_BITS_PER_EDGE
from .tiles import TileLayout, build_tile_layout


class _DenseTile:
    """One converted tile, ready for full-row or row-serial MACs."""

    def __init__(
        self,
        layout: TileLayout,
        position: int,
        events: EventLog,
    ) -> None:
        config = layout.config
        t = config.tile_size
        self.t = t
        self.row_base = int(layout.tile_row[position]) * t
        self.col_base = int(layout.tile_col[position]) * t
        lo, hi = layout.tile_offsets[position], layout.tile_offsets[position + 1]
        self.src = layout.src[lo:hi]
        self.dst = layout.dst[lo:hi]
        self.weight = layout.weight[lo:hi]
        self.mac = MacCrossbar(
            rows=t, cols=t, accumulate_limit=t, events=events,
            cell_bits=config.cell_bits,
        )

    def convert(self, values: np.ndarray, events: EventLog) -> None:
        """Sparse-to-dense conversion: program every tile cell.

        ``values`` holds the per-edge value to densify (edge weight for
        SSSP, 1/out-degree for PageRank). Every cell of the tile is
        written — including the zeros — matching the engine's
        ``tile_size`` row writes and ``tile_size^2`` cell writes.
        """
        dense = np.zeros((self.t, self.t))
        dense[self.src - self.row_base, self.dst - self.col_base] = values
        self.mac.write_rows(np.arange(self.t), dense)
        events.buffer_reads += int(self.src.size)  # COO reads


class MicroGraphR:
    """Slow, honest GraphR built from the array-level components."""

    def __init__(
        self, graph: Graph, config: Optional[GraphRConfig] = None
    ) -> None:
        self.config = config if config is not None else GraphRConfig()
        self.graph = graph
        self.layout = build_tile_layout(graph, self.config)

    def _account_storage(self, events: EventLog) -> None:
        edges = self.layout.num_edges
        events.cam_cell_writes += edges * COORD_BITS_PER_EDGE
        events.cell_writes += edges * self.config.bit_slices
        events.row_writes += edges

    def _build_tiles(self, events: EventLog) -> List[_DenseTile]:
        return [
            _DenseTile(self.layout, pos, events)
            for pos in range(self.layout.num_tiles)
        ]

    # ------------------------------------------------------------------
    def pagerank(
        self, alpha: float = 0.85, iterations: int = 10
    ) -> Tuple[np.ndarray, EventLog]:
        """Full-tile-parallel PageRank (Figure 4b)."""
        n = self.graph.num_vertices
        events = EventLog()
        self._account_storage(events)
        out_deg = self.graph.out_degrees().astype(np.float64)
        inv = np.divide(1.0, out_deg, out=np.zeros(n), where=out_deg > 0)
        tiles = self._build_tiles(events)
        t = self.config.tile_size
        ranks = np.ones(n)
        for _ in range(iterations):
            contrib = np.zeros(n)
            for tile in tiles:
                # Re-conversion every iteration (scratch compute arrays).
                tile.convert(inv[tile.src], events)
                inputs = ranks[tile.row_base : tile.row_base + t]
                padded = np.zeros(t)
                padded[: inputs.size] = inputs
                events.buffer_reads += t  # rank inputs
                summed = tile.mac.mac(padded)  # whole dense tile at once
                cols = min(n - tile.col_base, t)
                contrib[tile.col_base : tile.col_base + cols] += summed[:cols]
                events.sfu_ops += t  # per-column partial accumulate
            ranks = (1.0 - alpha) + alpha * contrib
            events.sfu_ops += 2 * n
            events.buffer_writes += n
        return ranks, events

    # ------------------------------------------------------------------
    def _traversal(
        self, source: int, weighted: bool
    ) -> Tuple[np.ndarray, EventLog]:
        n = self.graph.num_vertices
        if not 0 <= source < n:
            raise AlgorithmError(f"source {source} out of range [0, {n})")
        events = EventLog()
        self._account_storage(events)
        tiles = self._build_tiles(events)
        t = self.config.tile_size
        dist = np.full(n, np.inf)
        dist[source] = 0.0
        active = np.zeros(n, dtype=bool)
        active[source] = True
        groups = self.layout.groups_by_src()
        while active.any():
            new_dist = dist.copy()
            for tile in tiles:
                values = tile.weight if weighted else np.ones(tile.src.size)
                tile.convert(values, events)
                # Row-serial streaming: one MAC per tile row, active or
                # not — without a CAM, GraphR cannot skip word lines.
                for local_row in range(t):
                    one_hot = np.zeros(t)
                    one_hot[local_row] = 1.0
                    row_mask = np.zeros(t, dtype=bool)
                    row_mask[local_row] = True
                    row_values = tile.mac.mac(one_hot, row_mask=row_mask)
                    events.sfu_ops += t  # min-compare per dense output
                    u = tile.row_base + local_row
                    if u >= n or not active[u]:
                        continue
                    hits = tile.src == u
                    if not hits.any():
                        continue
                    # Valid columns only: zero cells are non-edges the
                    # dense mapping must not relax through.
                    cols = tile.dst[hits] - tile.col_base
                    # BFS tiles were converted with all-ones values, so
                    # the same expression yields dist(u) + 1 there.
                    candidates = row_values[cols] + dist[u]
                    np.minimum.at(new_dist, tile.dst[hits], candidates)
            improved = new_dist < dist
            events.buffer_reads += int(active[groups.vertex].sum())
            events.sfu_ops += int(improved.sum())
            events.buffer_writes += int(improved.sum())
            dist = new_dist
            active = improved
        return dist, events

    def bfs(self, source: int) -> Tuple[np.ndarray, EventLog]:
        """Breadth-first search."""
        return self._traversal(source, weighted=False)

    def sssp(self, source: int) -> Tuple[np.ndarray, EventLog]:
        """Single-source shortest paths."""
        return self._traversal(source, weighted=True)
