"""Dense-tile decomposition of the adjacency matrix for GraphR.

GraphR cuts the adjacency matrix into ``tile_size x tile_size``
sub-blocks, skips the all-zero ones, and converts each non-empty block
from the stored COO into a dense matrix inside a compute crossbar
(Figure 4a/b of the GaaS-X paper). This module materializes the
non-empty tile index with the groupings its engine needs, fully
vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ...config import GraphRConfig
from ...graphs.graph import Graph


@dataclass
class TileGroupIndex:
    """Edges grouped by (tile, source vertex) — one row of one tile."""

    tile_pos: np.ndarray  # index into the layout's tile arrays, per group
    vertex: np.ndarray  # source vertex per group
    count: np.ndarray  # edges per group
    edge_perm: np.ndarray
    group_offsets: np.ndarray

    @property
    def num_groups(self) -> int:
        """Number of (tile, src) groups."""
        return int(self.tile_pos.size)


@dataclass
class TileLayout:
    """The non-empty tiles of a graph under GraphR's dense mapping.

    Edge arrays are sorted by (tile, dst, src); tile ``t``'s edges are
    ``[tile_offsets[t], tile_offsets[t+1])``. Tiles are assigned to
    crossbars in index order (``tiles_per_crossbar`` each) and crossbars
    to batches of ``num_crossbars``.
    """

    config: GraphRConfig
    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    tile_row: np.ndarray  # per non-empty tile
    tile_col: np.ndarray
    tile_nnz: np.ndarray
    tile_offsets: np.ndarray
    _groups: Dict[str, TileGroupIndex] = field(default_factory=dict)

    @property
    def num_tiles(self) -> int:
        """Non-empty tiles."""
        return int(self.tile_row.size)

    @property
    def num_edges(self) -> int:
        """Edges (graph edge count)."""
        return int(self.src.size)

    @property
    def dense_cells_per_tile(self) -> int:
        """Values materialized per dense tile."""
        return self.config.tile_size * self.config.tile_size

    def xbar_of_tile(self, tiles: np.ndarray) -> np.ndarray:
        """Compute-crossbar id holding each tile (by load order)."""
        return tiles // self.config.tiles_per_crossbar

    def batch_of_xbar(self, xbars: np.ndarray) -> np.ndarray:
        """Batch index of each crossbar id."""
        return xbars // self.config.num_crossbars

    @property
    def num_batches(self) -> int:
        """Sequential batch loads for one full pass over all tiles."""
        if self.num_tiles == 0:
            return 0
        return -(-self.num_tiles // self.config.tiles_per_batch)

    # ------------------------------------------------------------------
    def groups_by_src(self) -> TileGroupIndex:
        """Group edges by (tile, src): the rows GraphR's traversal
        kernels process one MAC at a time (cached)."""
        if "src" in self._groups:
            return self._groups["src"]
        tile_of_edge = np.repeat(
            np.arange(self.num_tiles), np.diff(self.tile_offsets)
        )
        perm = np.lexsort((self.src, tile_of_edge))
        sorted_tile = tile_of_edge[perm]
        sorted_src = self.src[perm]
        if sorted_src.size == 0:
            index = TileGroupIndex(
                tile_pos=np.empty(0, dtype=np.int64),
                vertex=np.empty(0, dtype=np.int64),
                count=np.empty(0, dtype=np.int64),
                edge_perm=perm,
                group_offsets=np.zeros(1, dtype=np.int64),
            )
        else:
            boundary = np.empty(sorted_src.size, dtype=bool)
            boundary[0] = True
            boundary[1:] = (sorted_tile[1:] != sorted_tile[:-1]) | (
                sorted_src[1:] != sorted_src[:-1]
            )
            starts = np.flatnonzero(boundary)
            offsets = np.append(starts, sorted_src.size)
            index = TileGroupIndex(
                tile_pos=sorted_tile[starts],
                vertex=sorted_src[starts],
                count=np.diff(offsets),
                edge_perm=perm,
                group_offsets=offsets,
            )
        self._groups["src"] = index
        return index


def build_tile_layout(graph: Graph, config: GraphRConfig) -> TileLayout:
    """Decompose ``graph`` into GraphR's non-empty dense tiles."""
    t = config.tile_size
    n = graph.num_vertices
    k = -(-n // t) if n else 0
    edges = graph.edges
    tile_ids = (edges.rows // t) * k + (edges.cols // t)
    perm = np.lexsort((edges.rows, edges.cols, tile_ids))
    src = edges.rows[perm]
    dst = edges.cols[perm]
    weight = edges.data[perm]
    sorted_tiles = tile_ids[perm]
    unique_tiles, starts = np.unique(sorted_tiles, return_index=True)
    offsets = np.append(starts, sorted_tiles.size)
    return TileLayout(
        config=config,
        num_vertices=n,
        src=src,
        dst=dst,
        weight=weight,
        tile_row=unique_tiles // k if k else unique_tiles,
        tile_col=unique_tiles % k if k else unique_tiles,
        tile_nnz=np.diff(offsets),
        tile_offsets=offsets,
    )
