"""GraphR engine: dense-mapping event accounting.

Mirrors :class:`repro.core.engine.GaaSXEngine` in structure and
functional semantics (the numerical results are identical — both
execute the same SpMV recurrences), but with GraphR's cost structure:

* One-time COO storage into memory ReRAM (charged identically in kind
  to GaaS-X's one-time sparse load, so the comparison isolates the
  *redundant* work).
* Per pass, every processed sub-block is converted sparse -> dense into
  a scratch compute crossbar: ``tile_size`` row writes and
  ``tile_size^2`` value-cell writes per tile — the redundant writes of
  Figure 5.
* PageRank processes a whole dense tile with a single parallel MAC
  (GraphR's strength: "the parallelism ... for PageRank is
  significantly higher", Section V-B), engaging every cell including
  the zero-valued ones — the redundant computations of Figure 5.
* BFS/SSSP follow GraphR's published streaming Bellman-Ford: every
  superstep re-converts and processes *all* non-empty tiles, one *row
  MAC at a time* per tile row — without a CAM there is no hit vector to
  selectively enable word lines (Section V-B: "GraphR can process only
  one row at a time in the graph tile, leading to lower parallelism").
  Constructor flag ``frontier_tile_skipping=True`` grants GraphR
  hypothetical tile-granular frontier skipping for ablation studies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...config import GraphRConfig
from ...core.algorithms.cf import initial_factors, reference_epoch
from ...core.algorithms.pagerank import reference_iteration
from ...core.controller import build_plan, record_plan
from ...core.engine import gather_ranges
from ...core.stats import CFResult, PageRankResult, RunStats, TraversalResult
from ...obs.metrics import observe_event_counts
from ...obs.trace import get_tracer
from ...energy.ledger import EnergyLedger
from ...errors import AlgorithmError
from ...events import EventLog
from ...graphs.graph import BipartiteGraph, Graph
from .tiles import TileLayout, build_tile_layout

#: Bits of one COO coordinate pair in memory ReRAM (two 32-bit ids,
#: single-level cells — plain storage, not TCAM).
COORD_BITS_PER_EDGE = 64


class GraphREngine:
    """GraphR accelerator bound to one input graph."""

    def __init__(
        self,
        graph: Graph | BipartiteGraph,
        config: Optional[GraphRConfig] = None,
        frontier_tile_skipping: bool = False,
    ) -> None:
        self.config = config if config is not None else GraphRConfig()
        self.frontier_tile_skipping = frontier_tile_skipping
        self.ledger = EnergyLedger(self.config.tech)
        if isinstance(graph, BipartiteGraph):
            self.bipartite: Optional[BipartiteGraph] = graph
            self.graph = graph.as_unified_graph()
        else:
            self.bipartite = None
            self.graph = graph
        self.layout: TileLayout = build_tile_layout(self.graph, self.config)

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _account_storage(self, events: EventLog) -> float:
        """One-time COO store into memory ReRAM (coordinates + weight)."""
        edges = self.layout.num_edges
        if edges == 0:
            return 0.0
        events.cam_cell_writes += edges * COORD_BITS_PER_EDGE
        events.cell_writes += edges * self.config.bit_slices
        events.row_writes += edges
        # Same parallel-write model as GaaS-X's loader: one row per
        # edge, 2048 arrays programming concurrently, batches serial.
        rows_per_xbar = self.config.crossbar_rows
        arrays = self.config.num_crossbars
        batches = -(-edges // (rows_per_xbar * arrays))
        per_batch_rows = min(rows_per_xbar, -(-edges // arrays))
        return (
            batches * per_batch_rows * self.config.tech.write_row_latency_s
        )

    def _account_conversion(
        self, events: EventLog, tiles: np.ndarray
    ) -> float:
        """Sparse->dense conversion of the given tiles into scratch
        compute crossbars; returns the write latency."""
        if tiles.size == 0:
            return 0.0
        t = self.config.tile_size
        events.row_writes += int(tiles.size) * t
        events.cell_writes += int(tiles.size) * t * t * self.config.bit_slices
        # Reading the COO entries out of memory ReRAM for conversion.
        events.buffer_reads += int(self.layout.tile_nnz[tiles].sum())
        xbars = self.layout.xbar_of_tile(tiles)
        rows_per_xbar = np.bincount(xbars) * t
        batches = self.layout.batch_of_xbar(
            np.arange(rows_per_xbar.size)
        )
        batch_rows = np.zeros(int(batches.max()) + 1 if batches.size else 0,
                              dtype=np.int64)
        np.maximum.at(batch_rows, batches, rows_per_xbar)
        return float(batch_rows.sum()) * self.config.tech.write_row_latency_s

    def _account_tile_macs(
        self,
        events: EventLog,
        tiles: np.ndarray,
        macs_per_tile: int,
        rows_per_mac: int,
        cols_engaged: int,
    ) -> float:
        """Charge dense MAC operations on the given tiles."""
        if tiles.size == 0:
            return 0.0
        total_macs = int(tiles.size) * macs_per_tile
        events.mac_ops += total_macs
        events.mac_rows_accumulated += total_macs * rows_per_mac
        events.mac_cell_ops += total_macs * rows_per_mac * cols_engaged
        events._grow_hist(rows_per_mac + 1)
        events.mac_rows_hist[rows_per_mac] += total_macs
        events.dac_conversions += total_macs * rows_per_mac
        events.adc_conversions += total_macs * cols_engaged
        xbars = self.layout.xbar_of_tile(tiles)
        macs_per_xbar = np.bincount(xbars) * macs_per_tile
        xbar_time = macs_per_xbar * (
            self.config.tech.mac_latency_s
            + self.config.tech.input_stage_latency_s
        )
        batches = self.layout.batch_of_xbar(np.arange(xbar_time.size))
        batch_time = np.zeros(int(batches.max()) + 1 if batches.size else 0)
        np.maximum.at(batch_time, batches, xbar_time)
        return float(batch_time.sum())

    def _finalize(
        self,
        events: EventLog,
        load_time: float,
        compute_time: float,
        passes: int,
    ) -> RunStats:
        stats = RunStats(
            events=events,
            load_time_s=load_time,
            compute_time_s=compute_time,
            passes=passes,
            batches_loaded=self.layout.num_batches,
        )
        stats.energy = self.ledger.price(events, stats.total_time_s)
        # GraphRConfig duck-types ArchConfig for build_plan (it carries
        # the same TechnologyParams); gated exactly like GaaSXEngine.
        if get_tracer().enabled:
            record_plan(build_plan(stats, self.config), engine="graphr")
            observe_event_counts(events.as_dict())
        return stats

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def pagerank(
        self,
        alpha: float = 0.85,
        iterations: int = 10,
        tolerance: Optional[float] = None,
    ) -> PageRankResult:
        """PageRank with GraphR's full-tile parallel MAC per sub-block."""
        with get_tracer().span(
            "engine.run", category="engine",
            engine="graphr", algorithm="pagerank",
        ):
            return self._pagerank(alpha, iterations, tolerance)

    def _pagerank(
        self,
        alpha: float,
        iterations: int,
        tolerance: Optional[float],
    ) -> PageRankResult:
        graph = self.graph
        n = graph.num_vertices
        out_deg = graph.out_degrees().astype(np.float64)
        inv = np.divide(1.0, out_deg, out=np.zeros(n), where=out_deg > 0)
        src, dst = graph.edges.rows, graph.edges.cols

        events = EventLog()
        load_time = self._account_storage(events)
        ranks = np.ones(n)
        executed = 0
        for _ in range(iterations):
            new_ranks = reference_iteration(ranks, src, dst, inv, alpha)
            executed += 1
            delta = float(np.max(np.abs(new_ranks - ranks))) if n else 0.0
            ranks = new_ranks
            if tolerance is not None and delta < tolerance:
                break

        all_tiles = np.arange(self.layout.num_tiles)
        t = self.config.tile_size
        pass_events = EventLog()
        pass_time = self._account_conversion(pass_events, all_tiles)
        pass_time += self._account_tile_macs(
            pass_events, all_tiles, macs_per_tile=1,
            rows_per_mac=t, cols_engaged=t,
        )
        # Per tile: t partial-sum accumulations; per vertex: damping.
        pass_events.sfu_ops += self.layout.num_tiles * t + 2 * n
        pass_events.buffer_reads += self.layout.num_tiles * t  # rank inputs
        pass_events.buffer_writes += n
        events.merge(pass_events.scaled(executed))
        compute_time = pass_time * executed

        stats = self._finalize(events, load_time, compute_time, executed)
        return PageRankResult(ranks=ranks, iterations=executed, stats=stats)

    def _traversal(self, source: int, weighted: bool) -> TraversalResult:
        with get_tracer().span(
            "engine.run", category="engine",
            engine="graphr", algorithm="sssp" if weighted else "bfs",
        ):
            return self._traversal_impl(source, weighted)

    def _traversal_impl(self, source: int, weighted: bool) -> TraversalResult:
        graph = self.graph
        n = graph.num_vertices
        if not 0 <= source < n:
            raise AlgorithmError(f"source {source} out of range [0, {n})")
        if weighted and graph.num_edges and graph.weights.min() < 0:
            raise AlgorithmError("SSSP requires non-negative edge weights")
        groups = self.layout.groups_by_src()
        group_starts = groups.group_offsets[:-1]
        t = self.config.tile_size

        events = EventLog()
        load_time = self._account_storage(events)
        dist = np.full(n, np.inf)
        dist[source] = 0.0
        active = np.zeros(n, dtype=bool)
        active[source] = True
        compute_time = 0.0
        supersteps = 0
        all_tiles = np.arange(self.layout.num_tiles)
        while active.any():
            group_mask = active[groups.vertex]
            if self.frontier_tile_skipping:
                touched = np.unique(groups.tile_pos[group_mask])
            else:
                touched = all_tiles
            # Re-convert every processed tile this superstep (scratch
            # compute arrays), then stream its rows one MAC at a time.
            compute_time += self._account_conversion(events, touched)
            compute_time += self._account_tile_macs(
                events, touched, macs_per_tile=t,
                rows_per_mac=1, cols_engaged=t,
            )
            # SFU: one min-compare per produced candidate (t per row
            # MAC, valid or not — dense output has no validity bits).
            events.sfu_ops += int(touched.size) * t * t
            events.buffer_reads += int(group_mask.sum())
            # Functional relaxation over the real edges only.
            edge_slots = gather_ranges(
                group_starts[group_mask], groups.count[group_mask]
            )
            edges = groups.edge_perm[edge_slots]
            candidates = dist[self.layout.src[edges]] + (
                self.layout.weight[edges] if weighted else 1.0
            )
            new_dist = dist.copy()
            np.minimum.at(new_dist, self.layout.dst[edges], candidates)
            improved = new_dist < dist
            events.sfu_ops += int(improved.sum())
            events.buffer_writes += int(improved.sum())
            dist = new_dist
            active = improved
            supersteps += 1

        stats = self._finalize(events, load_time, compute_time, supersteps)
        return TraversalResult(
            distances=dist, source=source, supersteps=supersteps, stats=stats
        )

    def bfs(self, source: int) -> TraversalResult:
        """Breadth-first search (unit weights)."""
        return self._traversal(source, weighted=False)

    def sssp(self, source: int) -> TraversalResult:
        """Single-source shortest paths."""
        return self._traversal(source, weighted=True)

    def collaborative_filtering(
        self,
        num_features: int = 32,
        epochs: int = 1,
        learning_rate: float = 0.002,
        regularization: float = 0.02,
        seed: int = 0,
    ) -> CFResult:
        """Collaborative filtering over dense-mapped rating tiles.

        Each epoch re-converts every non-empty rating tile and runs the
        two phases with dense row MACs: per tile and phase, one error
        MAC sweep and one accumulation sweep over all ``tile_size``
        rows, every feature column engaged.
        """
        if self.bipartite is None:
            raise AlgorithmError("collaborative filtering needs a bipartite graph")
        with get_tracer().span(
            "engine.run", category="engine",
            engine="graphr", algorithm="cf",
        ):
            return self._collaborative_filtering(
                num_features, epochs, learning_rate, regularization, seed
            )

    def _collaborative_filtering(
        self,
        num_features: int,
        epochs: int,
        learning_rate: float,
        regularization: float,
        seed: int,
    ) -> CFResult:
        bi = self.bipartite
        users, items = bi.ratings.rows, bi.ratings.cols
        values = bi.ratings.data

        events = EventLog()
        load_time = self._account_storage(events)
        segments = -(-num_features // 16)
        feature_rows = (bi.num_users + bi.num_items) * segments
        events.row_writes += feature_rows
        events.cell_writes += (
            (bi.num_users + bi.num_items) * num_features * self.config.bit_slices
        )
        load_time += (
            feature_rows
            / self.config.num_crossbars
            * self.config.tech.write_row_latency_s
        )

        user_features, item_features = initial_factors(
            bi.num_users, bi.num_items, num_features, seed
        )
        for _ in range(epochs):
            user_features, item_features = reference_epoch(
                users, items, values,
                user_features, item_features,
                learning_rate, regularization,
            )

        all_tiles = np.arange(self.layout.num_tiles)
        t = self.config.tile_size
        pass_events = EventLog()
        pass_time = self._account_conversion(pass_events, all_tiles)
        # Two phases x (error sweep + accumulate sweep), dense rows.
        for _phase in range(2):
            for _sweep in range(2):
                pass_time += self._account_tile_macs(
                    pass_events, all_tiles,
                    macs_per_tile=t * segments,
                    rows_per_mac=1, cols_engaged=num_features,
                )
        pass_events.sfu_ops += 2 * values.size
        pass_events.sfu_ops += 3 * num_features * (bi.num_users + bi.num_items)
        pass_events.buffer_reads += 2 * values.size * segments
        pass_events.buffer_writes += (bi.num_users + bi.num_items) * segments
        events.merge(pass_events.scaled(epochs))
        compute_time = pass_time * epochs

        stats = self._finalize(events, load_time, compute_time, epochs)
        return CFResult(
            user_features=user_features,
            item_features=item_features,
            epochs=epochs,
            stats=stats,
        )
