"""GPU software-framework cost models: Gunrock and cuMF on a Titan V.

* **Gunrock** is frontier-based: each pass launches advance/filter
  kernels. Graph workloads on GPUs are memory-bound with poor access
  efficiency (random vertex/edge gathers waste most of each 32-byte
  sector), so the effective per-edge cost sits near 0.25 ns — a few
  GTEPS, consistent with published Gunrock numbers on Volta — and
  every superstep pays kernel-launch/synchronization latency, which is
  what makes many-superstep traversals on small frontiers inefficient.
* **cuMF** does batched dense algebra for matrix factorization and
  runs close to compute-bound; the paper accordingly sees GaaS-X beat
  it by only ~2x on CF.

Powers are active-minus-idle (nvidia-smi methodology of the paper):
~34 W for bandwidth-bound graph kernels, ~71 W for cuMF's dense math.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AlgorithmError
from .workload import BaselineResult, WorkloadTrace


@dataclass(frozen=True)
class GunrockModel:
    """Gunrock (PPoPP'16 / TOPC'17) on an Nvidia Titan V."""

    ns_per_edge: float = 0.45  # ~2 GTEPS effective advance rate
    ns_per_vertex: float = 0.05
    kernel_launch_s: float = 25e-6  # launch + sync per superstep
    power_w: float = 34.0
    platform: str = "gunrock"

    def run(self, trace: WorkloadTrace) -> BaselineResult:
        """Price the trace: per-pass launch cost + memory-bound work."""
        if trace.algorithm == "cf":
            raise AlgorithmError("the paper runs CF on cuMF, not Gunrock")
        time_s = float(
            trace.passes * self.kernel_launch_s
            + np.sum(trace.edges_per_pass) * self.ns_per_edge * 1e-9
            + np.sum(trace.active_vertices_per_pass)
            * self.ns_per_vertex
            * 1e-9
        )
        return BaselineResult(
            self.platform, trace.algorithm, time_s, time_s * self.power_w
        )


@dataclass(frozen=True)
class CuMFModel:
    """cuMF (arXiv:1603.03820) matrix factorization on a Titan V."""

    effective_tflops: float = 0.5  # sparse-gather-bound fraction of peak
    bytes_per_rating: float = 16.0
    hbm_bandwidth_gbs: float = 650.0
    epoch_overhead_s: float = 50e-6
    power_w: float = 71.0
    platform: str = "cumf"

    def run(self, trace: WorkloadTrace, num_features: int = 32) -> BaselineResult:
        """Price a CF trace: FLOPs + rating traffic per epoch."""
        if trace.algorithm != "cf":
            raise AlgorithmError("cuMF only runs collaborative filtering")
        flops = (
            np.sum(trace.edges_per_pass).astype(np.float64)
            * num_features
            * 4.0  # dot product + accumulate, both phases folded in
        )
        traffic_s = (
            np.sum(trace.edges_per_pass)
            * self.bytes_per_rating
            / (self.hbm_bandwidth_gbs * 1e9)
        )
        time_s = float(
            flops / (self.effective_tflops * 1e12)
            + traffic_s
            + trace.passes * self.epoch_overhead_s
        )
        return BaselineResult(
            self.platform, trace.algorithm, time_s, time_s * self.power_w
        )
