"""Workload traces: the algorithm-level work every platform prices.

The CPU/GPU software baselines are analytical cost models (Section V-A
of the paper measures real machines; we have none), so all of them
consume the same :class:`WorkloadTrace` — how many passes the algorithm
ran and how many edges/vertices each pass touched — extracted from the
same functional execution the accelerators perform. This guarantees
every platform is priced on identical algorithmic work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import AlgorithmError
from ..graphs.graph import BipartiteGraph, Graph


@dataclass(frozen=True)
class WorkloadTrace:
    """Per-pass work of one algorithm execution."""

    algorithm: str
    num_vertices: int
    num_edges: int
    edges_per_pass: np.ndarray
    active_vertices_per_pass: np.ndarray

    @property
    def passes(self) -> int:
        """Iterations (PR, CF) or supersteps (BFS/SSSP)."""
        return int(self.edges_per_pass.size)

    @property
    def total_edges_processed(self) -> int:
        """Edge relaxations/aggregations summed over all passes."""
        return int(self.edges_per_pass.sum())


@dataclass(frozen=True)
class BaselineResult:
    """Modelled outcome of running a workload on one platform."""

    platform: str
    algorithm: str
    time_s: float
    energy_j: float


def trace_pagerank(graph: Graph, iterations: int = 10) -> WorkloadTrace:
    """PageRank touches every edge and every vertex each iteration."""
    e = np.full(iterations, graph.num_edges, dtype=np.int64)
    v = np.full(iterations, graph.num_vertices, dtype=np.int64)
    return WorkloadTrace("pagerank", graph.num_vertices, graph.num_edges, e, v)


def trace_traversal(
    graph: Graph, source: int, weighted: bool
) -> WorkloadTrace:
    """Frontier sizes of the synchronous BFS/Bellman-Ford wavefront.

    Runs the same relaxation the accelerator engines execute and
    records, per superstep, the out-edges of the active frontier and
    the frontier size.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} out of range [0, {n})")
    csr = graph.csr()
    out_deg = csr.row_degrees()
    src = np.repeat(np.arange(n), out_deg)
    dst = csr.indices
    w = csr.data if weighted else np.ones(dst.size)
    indptr = csr.indptr

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    active = np.zeros(n, dtype=bool)
    active[source] = True
    edges_per_pass: List[int] = []
    verts_per_pass: List[int] = []
    while active.any():
        verts = np.flatnonzero(active)
        spans = [np.arange(indptr[v], indptr[v + 1]) for v in verts]
        edges = np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
        edges_per_pass.append(int(edges.size))
        verts_per_pass.append(int(verts.size))
        new_dist = dist.copy()
        if edges.size:
            np.minimum.at(new_dist, dst[edges], dist[src[edges]] + w[edges])
        active = new_dist < dist
        dist = new_dist
    return WorkloadTrace(
        "sssp" if weighted else "bfs",
        n,
        graph.num_edges,
        np.asarray(edges_per_pass, dtype=np.int64),
        np.asarray(verts_per_pass, dtype=np.int64),
    )


def trace_wcc(graph: Graph) -> WorkloadTrace:
    """Per-superstep work of synchronous min-label propagation.

    Each superstep touches the out- and in-edges of the active set
    (undirected connectivity), so the per-pass edge count doubles
    relative to a directed sweep.
    """
    n = graph.num_vertices
    csr = graph.csr()
    csr_rev = graph.reversed().csr()
    out_deg = csr.row_degrees()
    in_deg = csr_rev.row_degrees()
    labels = np.arange(n, dtype=np.int64)
    active = (out_deg + in_deg) > 0
    edges_per_pass: List[int] = []
    verts_per_pass: List[int] = []
    src, dst = graph.edges.rows, graph.edges.cols
    while active.any():
        verts = np.flatnonzero(active)
        edges_per_pass.append(int(out_deg[verts].sum() + in_deg[verts].sum()))
        verts_per_pass.append(int(verts.size))
        new_labels = labels.copy()
        fwd = active[src]
        rev = active[dst]
        np.minimum.at(new_labels, dst[fwd], labels[src[fwd]])
        np.minimum.at(new_labels, src[rev], labels[dst[rev]])
        active = new_labels < labels
        labels = new_labels
    return WorkloadTrace(
        "cc", n, graph.num_edges,
        np.asarray(edges_per_pass, dtype=np.int64),
        np.asarray(verts_per_pass, dtype=np.int64),
    )


def trace_cf(bipartite: BipartiteGraph, epochs: int = 1) -> WorkloadTrace:
    """CF touches every rating twice per epoch (item and user phase)."""
    r = bipartite.num_ratings
    e = np.full(epochs, 2 * r, dtype=np.int64)
    v = np.full(
        epochs, bipartite.num_users + bipartite.num_items, dtype=np.int64
    )
    return WorkloadTrace(
        "cf", bipartite.num_users + bipartite.num_items, r, e, v
    )
