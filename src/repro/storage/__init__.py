"""Disk storage substrate: shard files and streaming cost model."""

from .disk import DiskModel
from .shards import ShardStore, estimate_stream_time

__all__ = ["DiskModel", "ShardStore", "estimate_stream_time"]
