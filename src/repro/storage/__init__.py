"""Disk storage substrate: mmap CSR store, shard files, cost model."""

from .disk import DiskModel
from .mmap_store import (
    MmapStore,
    StoredGraph,
    StoredShard,
    StreamChunk,
    get_store,
    reset_store,
)
from .shards import ShardStore, estimate_stream_time

__all__ = [
    "DiskModel",
    "MmapStore",
    "ShardStore",
    "StoredGraph",
    "StoredShard",
    "StreamChunk",
    "estimate_stream_time",
    "get_store",
    "reset_store",
]
