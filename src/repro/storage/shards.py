"""On-disk shard layout (Figure 2 of the paper).

A :class:`ShardStore` lays a :class:`~repro.graphs.partition.ShardGrid`
out as contiguous per-shard byte extents, in row-major shard order —
the layout GridGraph/GraphChi-style frameworks write. Reading shards in
either interval-major order then costs a bounded number of seeks: zero
extra for row-major (the file order), one per shard for column-major
(each jump to the next source interval's copy of a destination column
is a discontinuity). GaaS-X inherits this storage format unchanged
(Section II-B: "GaaS-X also employs similar storage mechanism").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import PartitionError
from ..graphs.partition import ShardGrid
from .disk import DiskModel


@dataclass(frozen=True)
class ShardExtent:
    """One shard's byte extent in the store."""

    src_interval: int
    dst_interval: int
    offset_bytes: int
    num_edges: int


class ShardStore:
    """Byte-level layout of a shard grid on a disk model."""

    def __init__(self, grid: ShardGrid, disk: DiskModel | None = None) -> None:
        self.grid = grid
        self.disk = disk if disk is not None else DiskModel()
        self._extents: List[ShardExtent] = []
        self._index: Dict[Tuple[int, int], ShardExtent] = {}
        offset = 0
        for shard in grid.iter_shards("row"):
            extent = ShardExtent(
                src_interval=shard.src_interval,
                dst_interval=shard.dst_interval,
                offset_bytes=offset,
                num_edges=shard.num_edges,
            )
            self._extents.append(extent)
            self._index[(shard.src_interval, shard.dst_interval)] = extent
            offset += int(shard.num_edges * self.disk.bytes_per_edge)
        self._total_bytes = offset

    @property
    def total_bytes(self) -> int:
        """Store size in bytes."""
        return self._total_bytes

    @property
    def num_shards(self) -> int:
        """Number of stored (non-empty) shards."""
        return len(self._extents)

    def extent(self, src_interval: int, dst_interval: int) -> ShardExtent:
        """Extent of one shard; raises for empty/unknown shards."""
        try:
            return self._index[(src_interval, dst_interval)]
        except KeyError:
            raise PartitionError(
                f"no stored shard ({src_interval}, {dst_interval})"
            ) from None

    def _seeks_for_order(self, order: str) -> int:
        """Discontinuities when reading all shards in interval order."""
        if order == "row":
            return 1  # the file is already in row-major order
        if order == "col":
            # Every shard after the first whose predecessor is not its
            # file neighbour costs a seek.
            offsets = [
                self._index[(s.src_interval, s.dst_interval)].offset_bytes
                for s in self.grid.iter_shards("col")
            ]
            seeks = 1
            expected = None
            for extent_offset, extent in zip(
                offsets, self.grid.iter_shards("col")
            ):
                if expected is not None and extent_offset != expected:
                    seeks += 1
                expected = extent_offset + int(
                    extent.num_edges * self.disk.bytes_per_edge
                )
            return seeks
        raise PartitionError(f"unknown shard order {order!r}")

    def full_scan_time_s(self, order: str = "row") -> float:
        """Time to stream every shard in the given interval order."""
        return self.disk.stream_time_s(
            self.grid.num_edges, self._seeks_for_order(order)
        )

    def selective_scan_time_s(self, src_intervals: np.ndarray) -> float:
        """Time to stream only shards whose source interval is listed.

        The traversal case: per superstep only intervals containing
        active vertices are fetched; each contiguous run of wanted
        shards costs one seek. A fragmented selection's seek cost can
        exceed the single seek of streaming the whole file (2 seeks of
        a few dozen microseconds vs one sequential pass), so the result
        is capped at the contiguous full-scan cost — a real scheduler
        would fall back to scanning everything and discarding.
        """
        wanted = set(int(i) for i in np.atleast_1d(src_intervals))
        edges = 0
        seeks = 0
        previous_selected = False
        for extent in self._extents:
            selected = extent.src_interval in wanted
            if selected:
                edges += extent.num_edges
                if not previous_selected:
                    seeks += 1
            previous_selected = selected
        return min(
            self.disk.stream_time_s(edges, seeks),
            self.full_scan_time_s("row"),
        )


def estimate_stream_time(
    grid: ShardGrid, order: str = "row", disk: DiskModel | None = None
) -> float:
    """Convenience: full-scan streaming time for a grid."""
    return ShardStore(grid, disk).full_scan_time_s(order)
