"""Out-of-core streaming kernels over the mmap CSR store.

The full-scale paper profiles (LiveJournal 69M, Orkut 106M edges) do
not fit the per-process COO copies the in-memory pipeline makes, which
is why they historically ran 10×–200× scaled down. These kernels
consume a :class:`~repro.storage.mmap_store.StoredGraph` one bounded
chunk at a time: each chunk maps at most ``max_resident_bytes`` of
edge extents (see :meth:`StoredGraph.iter_chunks`), is reduced into
O(V) accumulators, and is released before the next chunk is touched —
so resident edge data never exceeds the budget regardless of graph
size. The O(V) rank/degree vectors are the only full-size state.

Semantics match the in-memory reference exactly:
:func:`streaming_pagerank` reproduces
:func:`repro.core.algorithms.pagerank.reference_iteration` — the
paper's unnormalized Equation 3 recurrence with no dangling-mass
redistribution — to float64 round-off (bincount accumulation order
differs across chunk boundaries).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import AlgorithmError
from .mmap_store import StoredGraph

#: Environment variable overriding the default resident-edge budget.
STREAM_BUDGET_ENV = "REPRO_STREAM_BUDGET_MB"

#: Default budget: 256 MiB of resident edge extents per chunk — small
#: enough for a laptop to page comfortably, large enough that LiveJournal
#: (~1.1 GB of indices+data) streams in a handful of chunks.
DEFAULT_BUDGET_BYTES = 256 << 20


def resolve_budget(max_resident_bytes: Optional[int] = None) -> int:
    """The effective chunk budget: argument, env override, or default."""
    if max_resident_bytes is not None:
        budget = int(max_resident_bytes)
    else:
        env = os.environ.get(STREAM_BUDGET_ENV)
        budget = int(float(env) * (1 << 20)) if env else DEFAULT_BUDGET_BYTES
    if budget < 64:
        raise AlgorithmError(
            f"resident budget {budget} bytes is below the one-edge floor"
        )
    return budget


@dataclass
class StreamStats:
    """Accounting for one streaming run (observability + tests)."""

    chunks: int = 0
    edges: int = 0
    iterations: int = 0
    max_chunk_bytes: int = 0
    budget_bytes: int = 0
    chunk_bytes: List[int] = field(default_factory=list)

    def observe(self, nbytes: int, num_edges: int) -> None:
        self.chunks += 1
        self.edges += num_edges
        self.max_chunk_bytes = max(self.max_chunk_bytes, nbytes)
        self.chunk_bytes.append(nbytes)


def streaming_out_degrees(stored: StoredGraph) -> np.ndarray:
    """Out-degrees from the indptr extent alone (no edge data touched)."""
    return np.diff(stored.indptr).astype(np.float64)


def streaming_pagerank_iteration(
    stored: StoredGraph,
    ranks: np.ndarray,
    inv_outdeg: np.ndarray,
    alpha: float,
    base: float = 1.0,
    max_resident_bytes: Optional[int] = None,
    stats: Optional[StreamStats] = None,
) -> np.ndarray:
    """One Equation-3 PageRank step, streamed under a residency budget.

    Equivalent to ``reference_iteration(ranks, src, dst, inv_outdeg,
    alpha, base)`` where (src, dst) enumerate the stored edges; the
    source column is never materialized globally — each chunk derives
    its own ``row_ids`` from the local indptr.
    """
    budget = resolve_budget(max_resident_bytes)
    n = stored.num_vertices
    contrib = np.zeros(n, dtype=np.float64)
    for chunk in stored.iter_chunks(budget):
        if chunk.num_edges == 0:
            if stats is not None:
                stats.observe(chunk.nbytes, 0)
            continue
        src = chunk.row_ids()
        contrib += np.bincount(
            np.asarray(chunk.indices),
            weights=ranks[src] * inv_outdeg[src],
            minlength=n,
        )
        if stats is not None:
            stats.observe(chunk.nbytes, chunk.num_edges)
    return (1.0 - alpha) * base + alpha * contrib


def streaming_pagerank(
    stored: StoredGraph,
    alpha: float = 0.85,
    iterations: int = 10,
    tolerance: Optional[float] = None,
    max_resident_bytes: Optional[int] = None,
) -> "StreamingPageRankResult":
    """Full PageRank over a stored graph within a residency budget.

    Same recurrence, initial state (all-ones ranks), and convergence
    rule as the engine's in-memory PageRank; only the edge traversal is
    out-of-core. Returns the ranks plus :class:`StreamStats` so callers
    (and the acceptance test) can assert the budget actually held.
    """
    if iterations < 1:
        raise AlgorithmError(f"iterations must be >= 1, got {iterations}")
    n = stored.num_vertices
    out_deg = streaming_out_degrees(stored)
    inv_outdeg = np.zeros(n, dtype=np.float64)
    nonzero = out_deg > 0
    inv_outdeg[nonzero] = 1.0 / out_deg[nonzero]

    stats = StreamStats(budget_bytes=resolve_budget(max_resident_bytes))
    ranks = np.ones(n, dtype=np.float64)
    for _ in range(iterations):
        new_ranks = streaming_pagerank_iteration(
            stored,
            ranks,
            inv_outdeg,
            alpha,
            max_resident_bytes=max_resident_bytes,
            stats=stats,
        )
        stats.iterations += 1
        delta = float(np.max(np.abs(new_ranks - ranks))) if n else 0.0
        ranks = new_ranks
        if tolerance is not None and delta < tolerance:
            break
    return StreamingPageRankResult(ranks=ranks, stats=stats)


@dataclass
class StreamingPageRankResult:
    """Ranks plus the streaming accounting that produced them."""

    ranks: np.ndarray
    stats: StreamStats
