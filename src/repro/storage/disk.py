"""Disk access-cost model.

Section II-B: "the goal of single system disk based graph processing is
to partition the graph data into grids or sub-shards in such a way that
random accesses to the disk are minimized", and Section III-B: shards
stream "in the increasing order of either source interval (row-wise) or
destination interval (column-wise) ... resulting in sequential disk
accesses".

The model prices an access pattern as sequential streaming plus a seek
per discontinuity — enough to expose the sequential-vs-random gap the
shard layout exists to exploit, without simulating a block device.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class DiskModel:
    """A streaming storage device (NVMe-class defaults)."""

    sequential_bandwidth_gbs: float = 3.0
    seek_latency_s: float = 80e-6
    bytes_per_edge: float = 12.0  # (src, dst, weight) on disk

    def __post_init__(self) -> None:
        if self.sequential_bandwidth_gbs <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.seek_latency_s < 0:
            raise ConfigError("seek latency must be non-negative")

    def stream_time_s(self, num_edges: int, num_seeks: int = 1) -> float:
        """Time to read ``num_edges`` with ``num_seeks`` discontinuities."""
        if num_edges < 0 or num_seeks < 0:
            raise ConfigError("counts must be non-negative")
        transfer = (
            num_edges * self.bytes_per_edge
            / (self.sequential_bandwidth_gbs * 1e9)
        )
        return transfer + num_seeks * self.seek_latency_s

    def random_edge_time_s(self, num_edges: int) -> float:
        """Worst case: every edge read costs a seek (no shard layout)."""
        return self.stream_time_s(num_edges, num_seeks=num_edges)
