"""CSR-native, memory-mapped graph store.

The accelerator model consumes edges shard by shard, but until this
module every software layer above it re-materialized the same edge set
in RAM per process: the dataset generator built a COO copy, each engine
another, each pool worker yet another. Here a dataset is written to
disk **once**, in a content-addressed, versioned binary layout, and
every subsequent consumer opens zero-copy read-only ``np.memmap`` views
over the same bytes — cross-process sharing is then just page-cache
sharing, and out-of-core iteration falls out of the extent table.

File layout (little-endian throughout)::

    offset 0   magic  b"GSX-CSR1"           (8 bytes)
    offset 8   format version               (u32 LE)
    offset 12  header JSON length H         (u32 LE)
    offset 16  header JSON                  (H bytes, UTF-8)
    ...        zero padding to a 64-byte boundary
    ...        indptr   extent              (num_vertices + 1 x <i8)
    ...        indices  extent              (nnz x <i8)
    ...        data     extent              (nnz x <f8)

The header records the array extents (absolute byte offset + element
count) plus a **sub-shard table**: contiguous row ranges sized to a
target edge count, each with its row and edge bounds. A shard's CSR
arrays are therefore plain slices of the global extents — per-shard
``indptr``/``indices``/``data`` views cost no copies beyond the local
(#rows + 1)-element indptr rebase.

Content addressing: the file name is the hex digest of the canonical
little-endian CSR bytes (plus vertex count), so equal graphs converge
on one file regardless of which host or process wrote them, and a
corrupt/partial write can never alias a good one (writes go through a
temp file + ``os.replace``). Alias files map human tags (e.g.
``dataset-WV-bench``) to digests so reopening a dataset never has to
regenerate it just to learn its key.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import StorageError
from ..graphs.csr import CSRMatrix
from ..obs.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graphs.graph import Graph

log = get_logger("repro.storage.mmap")

#: File magic; changes only with a byte-incompatible relayout.
MAGIC = b"GSX-CSR1"

#: Format version folded into the header and the content digest. Bump
#: on any change to the header schema or the extent layout.
FORMAT_VERSION = 1

#: Canonical on-disk dtypes (explicit little-endian). Every consumer
#: sees exactly these regardless of host endianness.
INDPTR_DTYPE = "<i8"
INDEX_DTYPE = "<i8"
VALUE_DTYPE = "<f8"

#: Array extents start on this alignment (mmap-friendly, SIMD-safe).
ALIGNMENT = 64

#: Default sub-shard granularity: contiguous row ranges holding about
#: this many edges. Small enough that scheduling can balance workers,
#: large enough that per-shard overhead stays negligible.
DEFAULT_SHARD_EDGES = 1 << 18

#: Environment variable overriding the store root directory.
STORE_DIR_ENV = "REPRO_STORE_DIR"

_HEADER_PREFIX = struct.Struct("<8sII")  # magic, version, json length


def default_store_dir() -> str:
    """Resolved store root (env override, else XDG-ish)."""
    env = os.environ.get(STORE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "store")


def canonical_bytes(arr: np.ndarray, dtype: str) -> bytes:
    """The canonical little-endian byte image of an array.

    Identity hashes (here and in :mod:`repro.core.cache`) must be
    computed over these bytes, never over native-order ``tobytes()`` —
    a big-endian host would otherwise fingerprint the same content
    differently and silently fork every content-keyed identity.
    """
    return np.ascontiguousarray(arr).astype(dtype, copy=False).tobytes()


def content_digest(
    num_vertices: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
) -> str:
    """Content address of one CSR graph (canonical-byte SHA-256)."""
    h = hashlib.sha256()
    h.update(MAGIC)
    h.update(struct.pack("<II", FORMAT_VERSION, 0))
    h.update(struct.pack("<q", int(num_vertices)))
    h.update(canonical_bytes(indptr, INDPTR_DTYPE))
    h.update(canonical_bytes(indices, INDEX_DTYPE))
    h.update(canonical_bytes(data, VALUE_DTYPE))
    return h.hexdigest()[:32]


def _align(offset: int) -> int:
    return -(-offset // ALIGNMENT) * ALIGNMENT


def build_shard_table(
    indptr: np.ndarray, target_edges: int
) -> List[Dict[str, int]]:
    """Split rows into contiguous sub-shards of ~``target_edges`` edges.

    Greedy row packing: a shard closes once it holds at least the
    target (a single super-hub row may exceed it — rows are never
    split at this level; the out-of-core iterator chunks by edge range
    when it needs an exact byte bound). Every row lands in exactly one
    shard and shards cover ``[0, num_rows)`` without gaps.
    """
    if target_edges < 1:
        raise StorageError(f"target_edges must be >= 1, got {target_edges}")
    num_rows = int(indptr.size - 1)
    shards: List[Dict[str, int]] = []
    row_lo = 0
    edge_lo = 0
    while row_lo < num_rows:
        # First row whose cumulative edge count reaches the target.
        row_hi = int(
            np.searchsorted(indptr, edge_lo + target_edges, side="left")
        )
        row_hi = max(row_hi, row_lo + 1)
        row_hi = min(row_hi, num_rows)
        edge_hi = int(indptr[row_hi])
        shards.append(
            {
                "row_lo": row_lo,
                "row_hi": row_hi,
                "edge_lo": edge_lo,
                "edge_hi": edge_hi,
            }
        )
        row_lo, edge_lo = row_hi, edge_hi
    if not shards:  # zero-vertex graph: one empty covering shard
        shards.append({"row_lo": 0, "row_hi": 0, "edge_lo": 0, "edge_hi": 0})
    return shards


def write_graph_file(
    path: str,
    num_vertices: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    name: str = "graph",
    target_edges: int = DEFAULT_SHARD_EDGES,
    digest: Optional[str] = None,
) -> str:
    """Write one CSR graph as a store file; returns its content digest.

    The write is atomic (temp file + rename), so readers never observe
    a partial file and concurrent writers of equal content are
    harmless — last rename wins with identical bytes.
    """
    indptr = np.ascontiguousarray(indptr).astype(INDPTR_DTYPE, copy=False)
    indices = np.ascontiguousarray(indices).astype(INDEX_DTYPE, copy=False)
    data = np.ascontiguousarray(data).astype(VALUE_DTYPE, copy=False)
    if indptr.size != num_vertices + 1:
        raise StorageError(
            f"indptr has {indptr.size} entries for {num_vertices} vertices"
        )
    if indices.size != data.size:
        raise StorageError("indices and data must match in length")
    if digest is None:
        digest = content_digest(num_vertices, indptr, indices, data)
    nnz = int(indices.size)
    shards = build_shard_table(indptr, target_edges)
    # Lay the extents out: header JSON size depends on the extent
    # offsets, which depend on the header size. The offsets are written
    # with fixed-width padding so one sizing pass suffices.
    header = {
        "format_version": FORMAT_VERSION,
        "name": name,
        "digest": digest,
        "num_vertices": int(num_vertices),
        "num_edges": nnz,
        "dtypes": {
            "indptr": INDPTR_DTYPE,
            "indices": INDEX_DTYPE,
            "data": VALUE_DTYPE,
        },
        "created_unix": round(time.time(), 3),
        "shards": shards,
        "arrays": {
            "indptr": {"offset": 0, "count": int(indptr.size)},
            "indices": {"offset": 0, "count": nnz},
            "data": {"offset": 0, "count": nnz},
        },
    }
    # Fix the header size with placeholder offsets of maximal width,
    # then fill in the real offsets (same width, zero-padded).
    for extent in header["arrays"].values():
        extent["offset"] = 10**15  # 16-digit placeholder
    payload = json.dumps(header, sort_keys=True).encode("utf-8")
    base = _align(_HEADER_PREFIX.size + len(payload))
    offsets = {
        "indptr": base,
        "indices": _align(base + indptr.size * 8),
    }
    offsets["data"] = _align(offsets["indices"] + nnz * 8)
    for array_name, offset in offsets.items():
        header["arrays"][array_name]["offset"] = offset
    payload = json.dumps(header, sort_keys=True).encode("utf-8")
    parent = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp.gsx")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(
                _HEADER_PREFIX.pack(MAGIC, FORMAT_VERSION, len(payload))
            )
            handle.write(payload)
            for array_name, arr in (
                ("indptr", indptr), ("indices", indices), ("data", data)
            ):
                pad = offsets[array_name] - handle.tell()
                if pad < 0:  # pragma: no cover - sizing invariant
                    raise StorageError("store extent layout overlap")
                handle.write(b"\x00" * pad)
                arr.tofile(handle)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return digest


def read_header(path: str) -> Dict[str, object]:
    """Parse and validate a store file's header."""
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(_HEADER_PREFIX.size)
            if len(prefix) < _HEADER_PREFIX.size:
                raise StorageError(f"{path}: truncated store header")
            magic, version, length = _HEADER_PREFIX.unpack(prefix)
            if magic != MAGIC:
                raise StorageError(
                    f"{path}: not a GSX CSR store file (bad magic)"
                )
            if version != FORMAT_VERSION:
                raise StorageError(
                    f"{path}: store format v{version} is not the "
                    f"supported v{FORMAT_VERSION}"
                )
            payload = handle.read(length)
    except OSError as exc:
        raise StorageError(f"cannot read store file {path!r}: {exc}") from exc
    if len(payload) < length:
        raise StorageError(f"{path}: truncated store header JSON")
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"{path}: corrupt store header: {exc}") from exc
    for key in ("num_vertices", "num_edges", "arrays", "shards", "digest"):
        if key not in header:
            raise StorageError(f"{path}: store header missing {key!r}")
    return header


@dataclass(frozen=True)
class StoredShard:
    """One sub-shard's bounds inside a stored graph."""

    index: int
    row_lo: int
    row_hi: int
    edge_lo: int
    edge_hi: int

    @property
    def num_rows(self) -> int:
        return self.row_hi - self.row_lo

    @property
    def num_edges(self) -> int:
        return self.edge_hi - self.edge_lo


@dataclass(frozen=True)
class StreamChunk:
    """One bounded-residency slice of a stored graph's edge extents.

    ``indices``/``data`` are zero-copy memmap views over the edge range
    ``[edge_lo, edge_hi)``; ``indptr`` is the rebased local row pointer
    (``indptr[0] == 0``) over rows ``[row_lo, row_hi)``, clipped at
    both ends when the chunk splits a hub row.
    """

    row_lo: int
    row_hi: int
    edge_lo: int
    edge_hi: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    @property
    def num_edges(self) -> int:
        return self.edge_hi - self.edge_lo

    @property
    def nbytes(self) -> int:
        """Resident bytes this chunk maps/materializes."""
        return int(
            self.indptr.nbytes + self.indices.nbytes + self.data.nbytes
        )

    def row_ids(self) -> np.ndarray:
        """Global source-row id of every edge in the chunk."""
        return np.repeat(
            np.arange(self.row_lo, self.row_hi, dtype=np.int64),
            np.diff(self.indptr),
        )


class StoredGraph:
    """Zero-copy read-only views over one store file.

    All array attributes are ``np.memmap`` views opened with
    ``mode="r"`` — attempting to write through them raises. The object
    is cheap to construct (only the header is read eagerly); pages
    fault in as consumers touch them.
    """

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        header = read_header(self.path)
        self.meta = header
        self.name = str(header.get("name", "graph"))
        self.digest = str(header["digest"])
        self.num_vertices = int(header["num_vertices"])
        self.num_edges = int(header["num_edges"])
        arrays = header["arrays"]

        def _view(array_name: str, dtype: str) -> np.ndarray:
            extent = arrays[array_name]
            return np.memmap(
                self.path,
                dtype=dtype,
                mode="r",
                offset=int(extent["offset"]),
                shape=(int(extent["count"]),),
            )

        self.indptr = _view("indptr", INDPTR_DTYPE)
        self.indices = _view("indices", INDEX_DTYPE)
        self.data = _view("data", VALUE_DTYPE)
        self.shards: Tuple[StoredShard, ...] = tuple(
            StoredShard(index=i, **entry)
            for i, entry in enumerate(header["shards"])
        )

    # ------------------------------------------------------------------
    # Whole-graph views
    # ------------------------------------------------------------------
    def csr(self) -> CSRMatrix:
        """The whole graph as a zero-copy :class:`CSRMatrix`."""
        return CSRMatrix(
            self.indptr,
            self.indices,
            self.data,
            (self.num_vertices, self.num_vertices),
        )

    def graph(self) -> "Graph":
        """A :class:`~repro.graphs.graph.Graph` over the stored views.

        Destination ids and weights stay memmap-backed; only the
        source-id column is materialized (CSR stores it implicitly).
        The graph's content fingerprint is pre-seeded with the store
        digest, so layout-cache keys are identical in every process
        that opens this file — warm caches are shared for free.
        """
        from ..core.cache import seed_fingerprint
        from ..graphs.graph import Graph

        graph = Graph.from_csr(self.csr(), name=self.name)
        seed_fingerprint(graph, self.digest)
        return graph

    def mutated(self, inserts=None, deletes=None) -> "Graph":
        """In-memory graph with an edge mutation batch applied.

        The store file is immutable (it is content-addressed — mutating
        it in place would falsify its digest), so a mutation produces a
        fresh :class:`~repro.graphs.graph.Graph` overlay whose own
        content fingerprint keys all downstream caches. Serve sessions
        hold the overlay; persisting it back is an explicit
        :meth:`MmapStore.put_graph` when the owner wants a durable
        snapshot.
        """
        return self.graph().with_edges(inserts=inserts, deletes=deletes)

    def out_degrees(self) -> np.ndarray:
        """Per-row edge counts (one O(V) pass over indptr)."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------------
    # Sub-shard views and scheduling
    # ------------------------------------------------------------------
    def shard_csr(self, index: int) -> CSRMatrix:
        """Sub-shard ``index`` as a local CSR over its row range.

        Indices/data are zero-copy views; the local indptr rebase is
        the only allocation (``num_rows + 1`` int64).
        """
        shard = self.shards[index]
        return self.csr().slice_rows(shard.row_lo, shard.row_hi)

    def shard_edge_counts(self) -> np.ndarray:
        """Edges per sub-shard, in row order."""
        return np.array([s.num_edges for s in self.shards], dtype=np.int64)

    def schedule(self, num_workers: int) -> List[List[int]]:
        """Degree-sorted balanced shard assignment for a worker pool.

        Longest-processing-time heuristic: shards sorted by descending
        edge count, each placed on the currently lightest worker —
        the classic 4/3-approximate makespan bound, which is what keeps
        every worker's edge total within a few percent of the mean on
        power-law graphs (one hub shard cannot capsize a worker).
        """
        if num_workers < 1:
            raise StorageError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        loads = np.zeros(num_workers, dtype=np.int64)
        assignment: List[List[int]] = [[] for _ in range(num_workers)]
        counts = self.shard_edge_counts()
        for index in np.argsort(-counts, kind="stable"):
            worker = int(np.argmin(loads))
            assignment[worker].append(int(index))
            loads[worker] += counts[index]
        return assignment

    def schedule_balance(self, num_workers: int) -> Dict[str, float]:
        """Balance statistics of :meth:`schedule` (1.0 is perfect)."""
        assignment = self.schedule(num_workers)
        counts = self.shard_edge_counts()
        loads = np.array(
            [int(counts[ids].sum()) for ids in assignment], dtype=np.float64
        )
        mean = float(loads.mean()) if loads.size else 0.0
        return {
            "workers": float(num_workers),
            "shards": float(len(self.shards)),
            "max_edges": float(loads.max(initial=0.0)),
            "mean_edges": mean,
            "balance": float(mean / loads.max()) if loads.max() > 0 else 1.0,
        }

    # ------------------------------------------------------------------
    # Out-of-core iteration
    # ------------------------------------------------------------------
    def iter_chunks(
        self, max_resident_bytes: Optional[int] = None
    ) -> Iterator[StreamChunk]:
        """Stream the edge extents under a resident-memory budget.

        Chunks are cut on exact edge boundaries — hub rows split across
        chunks — so ``chunk.nbytes`` never exceeds the budget (subject
        to the hard floor of one edge plus its two indptr entries).
        With no budget, one chunk per stored sub-shard is yielded.
        Consumers typically materialize O(chunk) temporaries on top
        (e.g. :meth:`StreamChunk.row_ids`), so a pipeline's true peak
        is a small multiple of the budget; the budget knob is the
        control surface, not a hard process RSS cap.
        """
        if max_resident_bytes is None:
            for shard in self.shards:
                yield self._chunk(shard.edge_lo, shard.edge_hi)
            return
        # Bytes per edge in a chunk: one index + one value; indptr adds
        # 8 bytes per covered row, accounted by shrinking the edge
        # budget conservatively (dense rows cover few indptr entries).
        per_edge = 16
        max_edges = max(1, (int(max_resident_bytes) - 2 * 8) // (per_edge + 8))
        edge_lo = 0
        while edge_lo < self.num_edges:
            edge_hi = min(edge_lo + max_edges, self.num_edges)
            yield self._chunk(edge_lo, edge_hi)
            edge_lo = edge_hi
        if self.num_edges == 0:
            yield self._chunk(0, 0)

    def _chunk(self, edge_lo: int, edge_hi: int) -> StreamChunk:
        indptr = self.indptr
        if edge_hi > edge_lo:
            row_lo = int(np.searchsorted(indptr, edge_lo, side="right")) - 1
            row_hi = int(np.searchsorted(indptr, edge_hi, side="left"))
        else:
            row_lo, row_hi = 0, 0
        local = np.clip(
            np.asarray(indptr[row_lo : row_hi + 1], dtype=np.int64),
            edge_lo,
            edge_hi,
        ) - edge_lo
        if local.size == 0:
            local = np.zeros(1, dtype=np.int64)
        return StreamChunk(
            row_lo=row_lo,
            row_hi=row_hi,
            edge_lo=edge_lo,
            edge_hi=edge_hi,
            indptr=local,
            indices=self.indices[edge_lo:edge_hi],
            data=self.data[edge_lo:edge_hi],
        )

    def __repr__(self) -> str:
        return (
            f"StoredGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, shards={len(self.shards)}, "
            f"digest={self.digest[:12]})"
        )


class MmapStore:
    """Content-addressed directory of stored graphs.

    ``root`` resolves through the explicit argument, then
    ``$REPRO_STORE_DIR``, then ``~/.cache/repro/store``. Files are
    ``<digest>.gsx``; alias files ``alias-<tag>.json`` map human tags
    to digests so a dataset converts exactly once per content.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_store_dir()

    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> str:
        """The store file path of a content digest."""
        return os.path.join(self.root, f"{digest}.gsx")

    def _alias_path(self, tag: str) -> str:
        slug = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in tag
        )
        return os.path.join(self.root, f"alias-{slug}.json")

    def resolve_alias(self, tag: str) -> Optional[str]:
        """Digest a tag points at, or None (missing/corrupt alias)."""
        try:
            with open(self._alias_path(tag), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            digest = payload.get("digest")
        except (OSError, json.JSONDecodeError, AttributeError):
            return None
        if not isinstance(digest, str) or not os.path.exists(
            self.path_for(digest)
        ):
            return None
        return digest

    def put_alias(self, tag: str, digest: str) -> None:
        """Point a tag at a digest (atomic overwrite)."""
        os.makedirs(self.root, exist_ok=True)
        path = self._alias_path(tag)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp.json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({"digest": digest, "tag": tag}, fh)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    def put_graph(
        self,
        graph: "Graph",
        tag: Optional[str] = None,
        target_edges: int = DEFAULT_SHARD_EDGES,
    ) -> StoredGraph:
        """Convert a graph to the store (idempotent) and open it.

        The graph's canonical CSR is built, content-addressed, and
        written only if that digest is not already stored; ``tag``
        optionally records an alias for later :meth:`open_tag` lookups.
        """
        csr = graph.csr()
        digest = content_digest(
            graph.num_vertices, csr.indptr, csr.indices, csr.data
        )
        path = self.path_for(digest)
        if not os.path.exists(path):
            os.makedirs(self.root, exist_ok=True)
            write_graph_file(
                path,
                graph.num_vertices,
                csr.indptr,
                csr.indices,
                csr.data,
                name=graph.name,
                target_edges=target_edges,
                digest=digest,
            )
            log.info(
                "store.converted", digest=digest, name=graph.name,
                vertices=graph.num_vertices, edges=graph.num_edges,
                path=path,
            )
        if tag is not None:
            self.put_alias(tag, digest)
        return StoredGraph(path)

    def open(self, digest: str) -> StoredGraph:
        """Open a stored graph by content digest."""
        path = self.path_for(digest)
        if not os.path.exists(path):
            raise StorageError(
                f"no stored graph with digest {digest!r} under {self.root}"
            )
        return StoredGraph(path)

    def open_tag(self, tag: str) -> StoredGraph:
        """Open a stored graph by alias tag."""
        digest = self.resolve_alias(tag)
        if digest is None:
            raise StorageError(
                f"no stored graph tagged {tag!r} under {self.root}; "
                f"convert it first (repro store-convert)"
            )
        return self.open(digest)

    def __contains__(self, digest: str) -> bool:
        return os.path.exists(self.path_for(digest))

    def entries(self) -> List[Dict[str, object]]:
        """Header summaries of every stored graph (for store-info)."""
        if not os.path.isdir(self.root):
            return []
        out: List[Dict[str, object]] = []
        for entry in sorted(os.listdir(self.root)):
            if not entry.endswith(".gsx"):
                continue
            path = os.path.join(self.root, entry)
            try:
                header = read_header(path)
            except StorageError:
                continue
            out.append(
                {
                    "digest": header["digest"],
                    "name": header.get("name", "graph"),
                    "vertices": header["num_vertices"],
                    "edges": header["num_edges"],
                    "shards": len(header["shards"]),
                    "bytes": os.path.getsize(path),
                }
            )
        return out

    # ------------------------------------------------------------------
    def dataset_tag(self, key: str, profile: str) -> str:
        """The alias tag of one (dataset, profile) conversion."""
        return f"dataset-{key.upper()}-{profile}"

    def dataset(self, key: str, profile: str = "bench") -> StoredGraph:
        """Get-or-convert the stand-in dataset for (key, profile).

        Bipartite datasets (Netflix) are stored as their unified square
        graph — the shape every shard/streaming consumer expects; the
        collaborative-filtering service path keeps its in-memory
        :class:`~repro.graphs.graph.BipartiteGraph` and does not route
        through the store.
        """
        tag = self.dataset_tag(key, profile)
        digest = self.resolve_alias(tag)
        if digest is not None:
            return self.open(digest)
        from ..graphs.datasets import load_dataset
        from ..graphs.graph import BipartiteGraph

        loaded = load_dataset(key, profile)
        if isinstance(loaded, BipartiteGraph):
            loaded = loaded.as_unified_graph()
        return self.put_graph(loaded, tag=tag)


# ----------------------------------------------------------------------
# Process-global store
# ----------------------------------------------------------------------
_global_store: Optional[MmapStore] = None


def get_store(root: Optional[str] = None) -> MmapStore:
    """The process-wide store (re-rooted when ``root`` is given)."""
    global _global_store
    if root is not None:
        _global_store = MmapStore(root)
    elif _global_store is None:
        _global_store = MmapStore()
    return _global_store


def reset_store() -> None:
    """Drop the global store binding (tests)."""
    global _global_store
    _global_store = None
