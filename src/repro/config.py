"""Architecture configuration for GaaS-X and the GraphR baseline.

The numbers here come from Table I of the paper (component counts, area,
power), Section V-A (30 ns MAC latency, 4 ns CAM latency, 6-bit ADC at
1.2 GSps, 2-bit DAC, 16-row accumulation limit, 2048 parallel compute
elements), and standard ReRAM device literature for the write cost that
the paper folds into its sparse-to-dense conversion overhead analysis.

Everything is a frozen dataclass so a configuration can be shared between
an engine, its baseline, and the energy ledger without aliasing bugs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .errors import ConfigError

#: Number of bit-slices per stored value: 16-bit values stored as eight
#: 2-bit ReRAM cells (Table I lists MAC crossbars as "128 x 16 x 8,
#: 2-bits/cell").
DEFAULT_BIT_SLICES = 8

#: Bits resolved per cell in the MAC crossbars.
DEFAULT_CELL_BITS = 2


@dataclass(frozen=True)
class TechnologyParams:
    """Per-operation latency and energy constants (32 nm node).

    Latencies are seconds, energies joules. The MAC and CAM latencies are
    the paper's SPICE-derived values; the per-crossbar dynamic energies
    are back-computed from Table I power figures (power x latency /
    number of concurrently active arrays). The ReRAM row-write cost is
    not in the paper's tables; 100 ns / ~2 pJ-per-cell SET/RESET is the
    standard figure used by GraphR and ISAAC and we document it here so
    the dense-vs-sparse write overhead (Figure 5) is grounded.
    """

    mac_latency_s: float = 30e-9
    cam_latency_s: float = 4e-9
    write_row_latency_s: float = 100e-9
    sfu_op_latency_s: float = 1e-9  # 1 GHz scalar pipeline
    # Staging one MAC operation's input vector from the input buffer
    # into the DAC registers (up to 16 values at ~1 GHz). Charged per
    # MAC op in both GaaS-X and GraphR.
    input_stage_latency_s: float = 15e-9

    # Per-event dynamic energies.
    mac_energy_j: float = 4.5e-12  # 307.2 mW / 2048 arrays * 30 ns
    cam_search_energy_j: float = 1.2e-12  # 614.4 mW / 2048 arrays * 4 ns
    adc_energy_j: float = 1.9e-12  # 328.96 mW / 512 ADCs * 30 ns / 10 reads
    dac_energy_j: float = 0.02e-12  # 1.64 mW across 256*2048 DACs
    # Per-cell programming energy of a 2-bit MAC cell. Low-current
    # 32 nm ReRAM SET/RESET energies span ~0.1-2 pJ in the device
    # literature; 1.2 pJ is the value that, combined with the published
    # Table I op energies, reproduces the paper's system-level energy
    # ratios (EXPERIMENTS.md records the calibration).
    write_cell_energy_j: float = 1.2e-12
    # Single-bit cells (CAM planes, coordinate storage) program with a
    # single short pulse at relaxed precision, below the multi-level
    # program-and-verify cost above.
    cam_cell_write_energy_j: float = 0.2e-12
    sfu_op_energy_j: float = 0.034e-12  # 33.87 mW / 1 GHz / 1000 lanes
    buffer_access_energy_j: float = 1.0e-12  # CACTI-class 32 nm SRAM read

    # Static (leakage + controller) power charged for the whole runtime.
    static_power_w: float = 0.8


@dataclass(frozen=True)
class ComponentSpec:
    """One row of Table I: a hardware component of the accelerator."""

    name: str
    configuration: str
    count: int
    area_mm2: float
    power_mw: float


#: Table I of the paper, verbatim. Areas are mm^2 (the paper prints them
#: scaled by 1e-3; here they are already true mm^2 totals per row).
TABLE_I_COMPONENTS = (
    ComponentSpec("MAC crossbar", "128x16x8, 2-bits/cell", 2048, 51.2e-3, 307.20),
    ComponentSpec("DAC", "2-bit", 256 * 2048, 0.08e-3, 1.64),
    ComponentSpec("S&H", "", 1152 * 2048, 72.00e-3, 2.56),
    ComponentSpec("ADC", "6-bit, 1.2 GSps", 512, 300.80e-3, 328.96),
    ComponentSpec("CAM crossbar", "128x128, 1-bit/cell", 2048, 80.00e-3, 614.40),
    ComponentSpec("Central controller", "", 1, 1650.00e-3, 50.00),
    ComponentSpec("SFU", "", 1, 286.72e-3, 33.87),
    ComponentSpec("Output buffer", "64 KB", 1, 25.60e-3, 34.88),
    ComponentSpec("Input buffer", "16 KB", 1, 6.40e-3, 8.72),
    ComponentSpec("Attribute buffer", "512 KB", 1, 204.80e-3, 279.04),
)

#: Totals as printed in Table I.
TABLE_I_TOTAL_AREA_MM2 = 2.69
TABLE_I_TOTAL_POWER_W = 1.66


@dataclass(frozen=True)
class ArchConfig:
    """GaaS-X machine configuration (Section III-A and Table I).

    Attributes
    ----------
    num_crossbars:
        Parallel CAM/MAC crossbar pairs (the paper's "2048 parallel
        compute elements"; GraphR is given the same number).
    cam_rows:
        Edges held per CAM crossbar; each row stores one (src, dst) pair.
    cam_width_bits:
        CAM row width; 128 bits fits two 32-bit vertex ids with room for
        the ternary mask planes.
    mac_rows:
        Rows per MAC crossbar; one edge attribute per row, so it must
        equal ``cam_rows`` for the hit vector to line up.
    mac_cols:
        Value columns per MAC crossbar (16 in Table I).
    mac_accumulate_limit:
        Maximum rows summed in one MAC operation ("we accumulate only 16
        values in each MAC operation to reduce the peripheral
        overheads"); determines ADC resolution.
    value_bits / cell_bits:
        Fixed-point attribute precision and per-cell resolution; the
        ratio is the number of bit slices per value.
    adc_bits / dac_bits:
        Converter resolutions (6-bit ADC, 2-bit DAC).
    """

    num_crossbars: int = 2048
    cam_rows: int = 128
    cam_width_bits: int = 128
    mac_rows: int = 128
    mac_cols: int = 16
    mac_accumulate_limit: int = 16
    value_bits: int = 16
    cell_bits: int = DEFAULT_CELL_BITS
    adc_bits: int = 6
    dac_bits: int = 2
    attribute_buffer_kb: int = 512
    tech: TechnologyParams = dataclasses.field(default_factory=TechnologyParams)

    def __post_init__(self) -> None:
        if self.num_crossbars <= 0:
            raise ConfigError("num_crossbars must be positive")
        if self.cam_rows != self.mac_rows:
            raise ConfigError(
                "cam_rows must equal mac_rows so CAM hit vectors map "
                "one-to-one onto MAC rows"
            )
        if not 0 < self.mac_accumulate_limit <= self.mac_rows:
            raise ConfigError("mac_accumulate_limit must be in (0, mac_rows]")
        if self.value_bits % self.cell_bits != 0:
            raise ConfigError("value_bits must be a multiple of cell_bits")
        if self.adc_bits <= 0 or self.dac_bits <= 0:
            raise ConfigError("converter resolutions must be positive")

    @property
    def bit_slices(self) -> int:
        """Number of ReRAM cells (bit slices) storing one value."""
        return self.value_bits // self.cell_bits

    @property
    def edges_per_crossbar(self) -> int:
        """Edges one CAM/MAC crossbar pair holds."""
        return self.cam_rows

    @property
    def edges_per_batch(self) -> int:
        """Edges resident across all crossbars in one load batch."""
        return self.num_crossbars * self.cam_rows

    @property
    def max_resident_attributes(self) -> int:
        """Vertex attributes the attribute buffer holds at once.

        Section III-B assumes "the on-chip storage is large enough to
        store all the attributes of the vertices loaded onto the
        crossbars in an execution cycle"; engines can check their
        interval size against this bound.
        """
        return self.attribute_buffer_kb * 1024 * 8 // self.value_bits

    def replace(self, **kwargs: object) -> "ArchConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class GraphRConfig:
    """Configuration of the re-simulated GraphR baseline (Section V-A).

    GraphR converts each non-empty ``tile_size x tile_size`` sub-block of
    the adjacency matrix into a dense crossbar region. The paper keeps
    the number of parallel compute elements (2048) and the technology
    parameters identical to GaaS-X, and uses 16x16 tiles for the
    Figure 5 overhead analysis.
    """

    num_crossbars: int = 2048
    crossbar_rows: int = 128
    crossbar_cols: int = 128
    tile_size: int = 16
    value_bits: int = 16
    cell_bits: int = DEFAULT_CELL_BITS
    tech: TechnologyParams = dataclasses.field(default_factory=TechnologyParams)

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise ConfigError("tile_size must be positive")
        if self.crossbar_rows % self.tile_size != 0:
            raise ConfigError("crossbar_rows must be a multiple of tile_size")
        if self.crossbar_cols % self.tile_size != 0:
            raise ConfigError("crossbar_cols must be a multiple of tile_size")
        if self.value_bits % self.cell_bits != 0:
            raise ConfigError("value_bits must be a multiple of cell_bits")

    @property
    def bit_slices(self) -> int:
        """Bit slices per stored value."""
        return self.value_bits // self.cell_bits

    @property
    def tiles_per_crossbar(self) -> int:
        """Dense tiles packed into one crossbar.

        Bit-slicing replicates each tile ``bit_slices`` times along the
        column direction, so the column capacity is divided accordingly.
        """
        rows = self.crossbar_rows // self.tile_size
        cols = self.crossbar_cols // (self.tile_size * self.bit_slices)
        return max(1, rows * cols)

    @property
    def tiles_per_batch(self) -> int:
        """Tiles resident across all crossbars in one load batch."""
        return self.num_crossbars * self.tiles_per_crossbar

    def replace(self, **kwargs: object) -> "GraphRConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)
