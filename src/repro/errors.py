"""Exception hierarchy for the GaaS-X reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of this package with a single clause
while still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphFormatError(ReproError):
    """A graph file or in-memory structure is malformed."""


class PartitionError(ReproError):
    """Interval partitioning was given inconsistent parameters."""


class CapacityError(ReproError):
    """Data does not fit in the configured crossbar resources."""


class ConfigError(ReproError):
    """An architecture or experiment configuration is invalid."""


class AlgorithmError(ReproError):
    """An algorithm was asked to run on an unsupported input."""


class DatasetError(ReproError):
    """An unknown dataset name or an unsatisfiable scaling profile."""
