"""Exception hierarchy for the GaaS-X reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of this package with a single clause
while still letting programming errors (``TypeError`` et al.) propagate.

The :class:`ServiceError` branch covers the always-on analytics service
(:mod:`repro.serve`). Because a service failure has to surface both at
the CLI (exit code) and over HTTP (status code), the mapping from
exception class to each transport lives here — in one place — rather
than in ad-hoc ``except`` clauses: :func:`exit_code_for` and
:func:`http_status_for` walk the exception's MRO, so the most specific
registered class wins and new subclasses inherit their parent's codes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphFormatError(ReproError):
    """A graph file or in-memory structure is malformed."""


class PartitionError(ReproError):
    """Interval partitioning was given inconsistent parameters."""


class CapacityError(ReproError):
    """Data does not fit in the configured crossbar resources."""


class ConfigError(ReproError):
    """An architecture or experiment configuration is invalid."""


class AlgorithmError(ReproError):
    """An algorithm was asked to run on an unsupported input."""


class DatasetError(ReproError):
    """An unknown dataset name or an unsatisfiable scaling profile."""


class StorageError(ReproError):
    """A graph store file is missing, corrupt, or wrongly versioned."""


# ----------------------------------------------------------------------
# Service branch (repro.serve)
# ----------------------------------------------------------------------
class ServiceError(ReproError):
    """Base class for analytics-service failures."""


class QuotaExceededError(ServiceError):
    """A tenant exhausted its token-bucket query quota."""


class QueryTimeoutError(ServiceError):
    """A query did not complete within its deadline."""


class SessionPoolExhaustedError(ServiceError):
    """The service is saturated: no warm session can be created or the
    bounded pending-query queue is full (load was shed, not queued)."""


# ----------------------------------------------------------------------
# Transport mappings (the single source of truth)
# ----------------------------------------------------------------------
#: CLI exit codes. 1 is the generic library-error exit the CLI has
#: always used; 2 belongs to argparse / failed validation and 3 to the
#: bench regression gate, so the service branch starts at 4.
EXIT_CODES = {
    QuotaExceededError: 4,
    QueryTimeoutError: 5,
    SessionPoolExhaustedError: 6,
    ReproError: 1,
}

#: HTTP status codes for the daemon's query endpoint. Malformed or
#: unsatisfiable requests are client errors; saturation and deadline
#: failures use the standard throttling/gateway statuses.
HTTP_STATUS = {
    QuotaExceededError: 429,
    QueryTimeoutError: 504,
    SessionPoolExhaustedError: 503,
    ServiceError: 500,
    GraphFormatError: 400,
    ConfigError: 400,
    AlgorithmError: 400,
    DatasetError: 400,
    CapacityError: 400,
    PartitionError: 400,
    ReproError: 500,
}


def _lookup(exc: BaseException, table: dict, default: int) -> int:
    for klass in type(exc).__mro__:
        if klass in table:
            return table[klass]
    return default


def exit_code_for(exc: BaseException) -> int:
    """The CLI exit code for an exception (most specific class wins)."""
    return _lookup(exc, EXIT_CODES, 1)


def http_status_for(exc: BaseException) -> int:
    """The HTTP status for an exception (most specific class wins)."""
    return _lookup(exc, HTTP_STATUS, 500)
