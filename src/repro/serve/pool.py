"""Warm engine sessions for the analytics service.

Serving latency is dominated by everything that happens *before* a
kernel iterates: generating/loading the dataset, lexsorting the shard
grid, packing crossbar layouts. The pool pays those costs once per
(dataset, profile, config) and keeps the resulting
:class:`~repro.core.engine.GaaSXEngine` alive across queries — the
serving-side counterpart of the batch layer's content-keyed layout
cache, and keyed on the very same content identities
(:func:`~repro.core.cache.graph_fingerprint` +
:func:`~repro.core.cache.config_fingerprint`).

Capacity is bounded: when full, the least-recently-used *idle* session
is evicted; if every resident session is busy the pool refuses with
:class:`~repro.errors.SessionPoolExhaustedError` instead of queueing —
admission control belongs to the service layer, which sheds load with
typed errors rather than building invisible backlogs.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..config import ArchConfig
from ..core.cache import config_fingerprint, graph_fingerprint
from ..core.engine import GaaSXEngine
from ..errors import SessionPoolExhaustedError, StorageError
from ..graphs.datasets import DATASETS, load_dataset, load_dataset_mmap
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, get_metrics

log = get_logger("repro.serve.pool")

#: Layout orientations warmed at session creation. ``col`` feeds
#: PageRank/CF's column-streamed passes, ``row`` the traversal kernels;
#: warming both means the first query of either family is compute-only.
WARM_ORDERS = ("col", "row")


class WarmSession:
    """One pre-loaded engine bound to a (dataset, profile, config).

    The session owns no concurrency itself beyond a busy flag — the
    service serializes kernel runs per session (crossbar state is a
    single physical resource) and marks the session busy for the
    duration. ``content_key`` is the content-addressed identity query
    keys build on.
    """

    def __init__(
        self,
        dataset: str,
        profile: str,
        config: ArchConfig,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.dataset = dataset
        self.profile = profile
        self.config = config
        registry = registry if registry is not None else get_metrics()
        # Warm sessions share edge arrays through the mmap CSR store:
        # every session (and every serving process on the host) maps
        # the same read-only file, so per-session residency is the
        # engine's layout state, not another copy of the graph — the
        # LRU pool holds proportionally more engines. Bipartite
        # datasets keep the in-memory path (collaborative filtering
        # needs the BipartiteGraph shape); a store failure (read-only
        # disk, quota) degrades to the in-memory loader rather than
        # failing the query.
        spec = DATASETS.get(dataset.upper())
        self.mmap_backed = False
        graph = None
        if spec is not None and not spec.bipartite:
            try:
                graph = load_dataset_mmap(dataset, profile)
                self.mmap_backed = True
            except (StorageError, OSError) as exc:
                # Degradations must be visible on /metrics, not only
                # in /stats: a host silently falling back to in-memory
                # loading is exactly what a dashboard should catch.
                registry.counter("serve.pool.mmap_fallback").inc()
                log.warning(
                    "pool.mmap_fallback", dataset=dataset,
                    profile=profile, error=str(exc),
                )
        if graph is None:
            graph = load_dataset(dataset, profile)
        self.engine = GaaSXEngine(graph, config=config)
        for order in WARM_ORDERS:
            self.engine.layout(order)
        #: Content-addressed identity: same graph bytes + same config
        #: fields => same key, whatever process created the session.
        self.content_key = (
            f"{graph_fingerprint(self.engine.graph)}-"
            f"{config_fingerprint(config)}"
        )
        self.created_unix = time.time()
        self.queries_served = 0
        self.mutations_applied = 0
        self.busy = False
        #: Last results per algorithm family — the warm state the
        #: incremental kernels start from after a mutation (PageRank
        #: warm ranks, WCC warm labels + seed frontier).
        self.algo_state: Dict[str, object] = {}

    @property
    def num_vertices(self) -> int:
        return self.engine.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.engine.graph.num_edges

    def apply_mutation(
        self, inserts=None, deletes=None
    ) -> Dict[str, object]:
        """Apply an edge mutation batch and rebind the session.

        The graph is immutable, so mutation means: derive the new
        graph (:meth:`~repro.graphs.graph.Graph.with_edges`), derive
        its shard grid incrementally from the old one and seed the
        layout cache with it, migrate the reuse cache at sub-shard
        granularity (crossbars whose sub-shard the batch did not touch
        carry their memoized searches to the new content token;
        touched ones are invalidated), then rebuild the engine and
        re-warm both streaming orders. Warm algorithm state survives
        where it is still sound: previous PageRank ranks stay as a
        warm start (they seed residuals, not truth), previous WCC
        labels become a ``(labels, seed)`` warm state via
        :func:`~repro.core.algorithms.incremental.wcc_warm_state`.

        The caller (the service) serializes this against kernel runs
        on the same session. Returns a summary for the mutate
        response.
        """
        from ..core.cache import get_cache
        from ..core.reuse import (
            get_reuse_cache,
            migrate_for_mutation,
            reuse_enabled,
        )
        from ..graphs.graph import normalize_mutation
        from ..graphs.partition import mutate_grid

        engine = self.engine
        old_graph = engine.graph
        n = old_graph.num_vertices
        ins = normalize_mutation(inserts, n)
        dels = normalize_mutation(deletes, n)
        old_grid = engine._grid
        new_graph = old_graph.with_edges(inserts=ins, deletes=dels)
        new_grid = mutate_grid(old_grid, new_graph, inserts=ins, deletes=dels)
        get_cache().seed_grid(new_graph, engine.interval_size, new_grid)
        migration = {"carried": 0, "invalidated": 0}
        if reuse_enabled():
            migration = migrate_for_mutation(
                get_reuse_cache(), old_graph, new_graph,
                old_grid, new_grid, engine.config, ins, dels,
            )
        self.engine = GaaSXEngine(
            new_graph, config=self.config,
            interval_size=engine.interval_size,
        )
        for order in WARM_ORDERS:
            self.engine.layout(order)
        self.mmap_backed = False  # the overlay graph lives in memory
        old_key = self.content_key
        self.content_key = (
            f"{graph_fingerprint(new_graph)}-"
            f"{config_fingerprint(self.config)}"
        )
        labels = self.algo_state.pop("wcc_labels", None)
        if labels is not None:
            from ..core.algorithms.incremental import wcc_warm_state

            self.algo_state["wcc_warm"] = wcc_warm_state(
                labels, new_graph.num_vertices,
                inserts=ins, deletes=dels,
            )
        self.mutations_applied += 1
        log.info(
            "pool.session_mutated", dataset=self.dataset,
            profile=self.profile, inserts=int(ins.shape[0]),
            deletes=int(dels.shape[0]), edges=new_graph.num_edges,
            carried=migration["carried"],
            invalidated=migration["invalidated"],
        )
        return {
            "old_content_key": old_key,
            "content_key": self.content_key,
            "num_vertices": new_graph.num_vertices,
            "num_edges": new_graph.num_edges,
            "inserts": int(ins.shape[0]),
            "deletes": int(dels.shape[0]),
            "reuse_carried": migration["carried"],
            "reuse_invalidated": migration["invalidated"],
            "mutations_applied": self.mutations_applied,
        }

    def describe(self) -> Dict[str, object]:
        """Introspection payload for the service's /stats endpoint."""
        return {
            "dataset": self.dataset,
            "profile": self.profile,
            "content_key": self.content_key,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "queries_served": self.queries_served,
            "mutations_applied": self.mutations_applied,
            "busy": self.busy,
            "mmap_backed": self.mmap_backed,
        }


class SessionPool:
    """Bounded LRU pool of :class:`WarmSession` objects.

    Thread-safe: creation happens inside the lock-free gap under a
    per-selector reservation so two concurrent first queries for the
    same graph build one session, not two.
    """

    def __init__(
        self,
        config: Optional[ArchConfig] = None,
        max_sessions: int = 8,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_sessions < 1:
            raise SessionPoolExhaustedError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        self.config = config if config is not None else ArchConfig()
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[Tuple[str, str], WarmSession]" = (
            OrderedDict()
        )
        self._building: Dict[Tuple[str, str], threading.Event] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Pool lifecycle counters on the scrapeable registry (they
        # were previously visible only through /stats).
        self.registry = registry if registry is not None else get_metrics()
        self._m_evictions = self.registry.counter("serve.pool.evictions")
        self._m_created = self.registry.counter(
            "serve.pool.sessions_created"
        )
        self._m_resident = self.registry.gauge("serve.pool.resident")

    # ------------------------------------------------------------------
    def get(self, selector: Tuple[str, str]) -> Optional[WarmSession]:
        """The resident session for a selector, or ``None`` (no build)."""
        with self._lock:
            session = self._sessions.get(selector)
            if session is not None:
                self._sessions.move_to_end(selector)
                self.hits += 1
            return session

    def acquire(self, dataset: str, profile: str) -> WarmSession:
        """Get-or-create the warm session for (dataset, profile).

        Blocking (dataset generation + layout packing on a miss) — the
        service calls this off the event loop. Raises
        :class:`~repro.errors.SessionPoolExhaustedError` when the pool
        is full of busy sessions.
        """
        selector = (dataset.upper(), profile)
        while True:
            with self._lock:
                session = self._sessions.get(selector)
                if session is not None:
                    self._sessions.move_to_end(selector)
                    self.hits += 1
                    return session
                building = self._building.get(selector)
                if building is None:
                    self._building[selector] = threading.Event()
                    break
            # Another thread is building this session; wait and retry.
            building.wait()
        try:
            session = WarmSession(
                selector[0], profile, self.config, registry=self.registry
            )
            with self._lock:
                self._evict_for_room_locked()
                self._sessions[selector] = session
                self.misses += 1
                self._m_created.inc()
                self._m_resident.set(len(self._sessions))
            log.info(
                "pool.session_created", dataset=selector[0],
                profile=profile, vertices=session.num_vertices,
                edges=session.num_edges,
                resident=len(self._sessions),
            )
            return session
        finally:
            with self._lock:
                event = self._building.pop(selector, None)
            if event is not None:
                event.set()

    def _evict_for_room_locked(self) -> None:
        """Drop idle LRU sessions until one slot is free (lock held)."""
        while len(self._sessions) >= self.max_sessions:
            victim_key = None
            for key, session in self._sessions.items():  # LRU first
                if not session.busy:
                    victim_key = key
                    break
            if victim_key is None:
                raise SessionPoolExhaustedError(
                    f"session pool is full ({self.max_sessions} busy "
                    f"sessions); retry later or raise --max-sessions"
                )
            evicted = self._sessions.pop(victim_key)
            self.evictions += 1
            self._m_evictions.inc()
            self._m_resident.set(len(self._sessions))
            log.info(
                "pool.session_evicted", dataset=evicted.dataset,
                profile=evicted.profile,
                queries_served=evicted.queries_served,
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def describe(self) -> Dict[str, object]:
        """Introspection payload for the service's /stats endpoint."""
        with self._lock:
            sessions = [s.describe() for s in self._sessions.values()]
        return {
            "max_sessions": self.max_sessions,
            "resident": len(sessions),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "sessions": sessions,
        }

    def clear(self) -> None:
        """Drop every resident session (shutdown/tests)."""
        with self._lock:
            self._sessions.clear()
            self._m_resident.set(0)
