"""The always-on analytics service: async queries over warm sessions.

:class:`AnalyticsService` is the in-process core the HTTP daemon, the
CLI, tests, and :class:`~repro.serve.bench.ServeBench` all drive. One
query's life:

1. **Admission** — the tenant's token bucket is charged
   (:class:`~repro.serve.quotas.AdmissionController`); over-quota
   traffic fails fast with
   :class:`~repro.errors.QuotaExceededError`.
2. **Session** — the warm pool hands back the pre-loaded engine for
   (dataset, profile); a cold first query builds it off the event loop.
3. **Coalescing** — the query's content key
   (:func:`~repro.serve.protocol.query_key`) is looked up in the
   in-flight table. A hit rides the existing engine run; a miss first
   checks the bounded pending-run count (past it, load is shed with
   :class:`~repro.errors.SessionPoolExhaustedError` — never queued
   invisibly) and then schedules exactly one engine run.
4. **Execution** — the kernel runs in a worker thread, serialized per
   session (one physical accelerator's crossbar state per session).
5. **Deadline** — each waiter applies its own ``timeout_s``
   (:class:`~repro.errors.QueryTimeoutError`); the shared run is
   shielded, so one impatient client cannot cancel work others wait on.

Every step is metered through :mod:`repro.obs.metrics` under stable
``serve.*`` names — instruments are get-or-created once per service,
never per query or per session, so warm-pool reuse cannot leak or
double-register collectors. ``/metrics`` exposition reuses
:mod:`repro.obs.export` unchanged.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from ..config import ArchConfig
from ..errors import (
    AlgorithmError,
    ConfigError,
    QueryTimeoutError,
    QuotaExceededError,
    SessionPoolExhaustedError,
)
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, get_metrics
from .pool import SessionPool, WarmSession
from .protocol import (
    QueryRequest,
    QueryResult,
    modelled_stats,
    query_key,
    summarize_result,
)
from .quotas import AdmissionController

log = get_logger("repro.serve")


class AnalyticsService:
    """Asyncio query service over a warm session pool.

    Parameters
    ----------
    arch_config:
        Machine configuration every warm engine uses (Table I default).
    max_sessions:
        Warm-pool capacity (LRU-evicted, idle sessions only).
    max_pending:
        Bound on distinct in-flight engine runs; excess distinct
        queries are shed. Coalesced duplicates are exempt.
    quota_rate, quota_burst:
        Per-tenant token-bucket policy; ``quota_rate=None`` disables
        metering.
    workers:
        Engine worker threads (default: ``max_pending`` capped at 8).
    default_timeout_s:
        Deadline applied when a query names none.
    run_delay_s:
        Artificial per-run kernel latency (seconds). Testing/benchmark
        knob that widens the coalescing window deterministically; keep
        0 in production.
    registry:
        Metrics registry to meter into (default: the process-wide one).
    """

    def __init__(
        self,
        arch_config: Optional[ArchConfig] = None,
        max_sessions: int = 8,
        max_pending: int = 64,
        quota_rate: Optional[float] = None,
        quota_burst: float = 64,
        workers: Optional[int] = None,
        default_timeout_s: float = 60.0,
        run_delay_s: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_pending < 1:
            raise ConfigError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if default_timeout_s <= 0:
            raise ConfigError(
                f"default_timeout_s must be > 0, got {default_timeout_s}"
            )
        self.pool = SessionPool(arch_config, max_sessions=max_sessions)
        self.admission = AdmissionController(quota_rate, quota_burst)
        self.max_pending = max_pending
        self.default_timeout_s = default_timeout_s
        self.run_delay_s = run_delay_s
        self._executor = ThreadPoolExecutor(
            max_workers=workers
            if workers is not None
            else min(max_pending, 8),
            thread_name_prefix="repro-serve",
        )
        self._inflight: Dict[str, "asyncio.Task"] = {}
        self._session_locks: Dict[str, "asyncio.Lock"] = {}
        self._closed = False
        # Instruments are created exactly once per service under fixed
        # names; re-instantiating a service over the same registry
        # get-or-creates the same objects (no duplicates, no kind
        # conflicts) — the warm-pool double-registration audit.
        registry = registry if registry is not None else get_metrics()
        self.registry = registry
        self._m = {
            "queries": registry.counter("serve.queries"),
            "engine_runs": registry.counter("serve.engine_runs"),
            "coalesced": registry.counter("serve.coalesced"),
            "quota_rejected": registry.counter("serve.quota_rejected"),
            "shed": registry.counter("serve.shed"),
            "timeouts": registry.counter("serve.timeouts"),
            "errors": registry.counter("serve.errors"),
            "inflight": registry.gauge("serve.inflight"),
            "sessions": registry.gauge("serve.sessions_resident"),
            "latency": registry.histogram("serve.latency_s"),
            "engine_run": registry.histogram("serve.engine_run_s"),
        }
        # Per-algorithm latency histograms: a fixed, finite name set
        # (the servable algorithms), registered up front — never minted
        # from query content.
        from .protocol import SERVABLE_ALGORITHMS

        self._latency_by_algorithm = {
            algorithm: registry.histogram(
                f"serve.latency_s.{algorithm}"
            )
            for algorithm in SERVABLE_ALGORITHMS
        }

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    async def submit(self, query: QueryRequest) -> QueryResult:
        """Serve one query; returns its :class:`QueryResult`.

        Raises the typed service errors documented in
        :mod:`repro.errors`; malformed queries fail in
        :class:`~repro.serve.protocol.QueryRequest` before ever
        reaching here.
        """
        if self._closed:
            raise SessionPoolExhaustedError("service is shut down")
        start = time.perf_counter()
        self._m["queries"].inc()
        try:
            self.admission.admit(query.tenant)
        except QuotaExceededError:
            self._m["quota_rejected"].inc()
            raise
        session = await self._session_for(query)
        key = query_key(session.content_key, query)
        # No awaits between the in-flight lookup and registration: the
        # check-then-register step is atomic on the event loop.
        task = self._inflight.get(key)
        coalesced = task is not None
        if coalesced:
            self._m["coalesced"].inc()
        else:
            if len(self._inflight) >= self.max_pending:
                self._m["shed"].inc()
                raise SessionPoolExhaustedError(
                    f"{len(self._inflight)} queries already in flight "
                    f"(max_pending={self.max_pending}); load shed"
                )
            task = asyncio.get_running_loop().create_task(
                self._execute(session, query, key)
            )
            self._inflight[key] = task
            task.add_done_callback(
                lambda _t, _key=key: self._inflight.pop(_key, None)
            )
            self._m["inflight"].set(len(self._inflight))
        timeout = (
            query.timeout_s
            if query.timeout_s is not None
            else self.default_timeout_s
        )
        try:
            payload, modelled = await asyncio.wait_for(
                asyncio.shield(task), timeout
            )
        except asyncio.TimeoutError:
            self._m["timeouts"].inc()
            raise QueryTimeoutError(
                f"query {query.algorithm} on {query.dataset} missed its "
                f"{timeout}s deadline (the engine run continues for "
                f"coalesced waiters)"
            ) from None
        latency = time.perf_counter() - start
        self._m["latency"].observe(latency)
        self._latency_by_algorithm[query.algorithm].observe(latency)
        return QueryResult(
            key=key,
            dataset=query.dataset,
            algorithm=query.algorithm,
            profile=query.profile,
            tenant=query.tenant,
            payload=payload,
            modelled=modelled,
            latency_s=latency,
            coalesced=coalesced,
        )

    async def _session_for(self, query: QueryRequest) -> WarmSession:
        """Warm-pool lookup; cold builds happen off the event loop."""
        session = self.pool.get(query.session_selector)
        if session is not None:
            return session
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._executor,
                self.pool.acquire,
                query.dataset,
                query.profile,
            )
        except SessionPoolExhaustedError:
            self._m["shed"].inc()
            raise

    async def _execute(
        self, session: WarmSession, query: QueryRequest, key: str
    ) -> Tuple[Dict[str, Any], Dict[str, float]]:
        """The one engine run a coalescing key resolves to."""
        lock = self._session_locks.setdefault(
            session.content_key, asyncio.Lock()
        )
        try:
            async with lock:  # one crossbar state, one run at a time
                session.busy = True
                try:
                    payload, modelled = await asyncio.get_running_loop(
                    ).run_in_executor(
                        self._executor, self._run_engine, session, query
                    )
                finally:
                    session.busy = False
                    session.queries_served += 1
            self._m["sessions"].set(len(self.pool))
            return payload, modelled
        except Exception:
            self._m["errors"].inc()
            raise
        finally:
            self._m["inflight"].set(max(len(self._inflight) - 1, 0))

    def _run_engine(
        self, session: WarmSession, query: QueryRequest
    ) -> Tuple[Dict[str, Any], Dict[str, float]]:
        """Worker-thread body: the actual kernel dispatch."""
        if self.run_delay_s > 0:
            time.sleep(self.run_delay_s)
        start = time.perf_counter()
        try:
            result = session.engine.run(query.algorithm, **query.params)
        except TypeError as exc:
            # Bad keyword against the kernel signature: a client error,
            # not a programming error in the service.
            raise AlgorithmError(
                f"invalid params for {query.algorithm!r}: {exc}"
            ) from None
        run_s = time.perf_counter() - start
        self._m["engine_runs"].inc()
        self._m["engine_run"].observe(run_s)
        log.debug(
            "serve.engine_run", dataset=query.dataset,
            algorithm=query.algorithm, run_s=round(run_s, 6),
        )
        return (
            summarize_result(query.algorithm, result),
            modelled_stats(result.stats),
        )

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------
    def preload(self, datasets, profile: str = "bench") -> None:
        """Synchronously warm sessions for the given dataset keys."""
        for dataset in datasets:
            self.pool.acquire(dataset, profile)
        self._m["sessions"].set(len(self.pool))

    @property
    def coalesce_hit_rate(self) -> float:
        """Fraction of admitted queries served by an existing run."""
        queries = self._m["queries"].value
        return self._m["coalesced"].value / queries if queries else 0.0

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot (the /stats endpoint payload)."""
        return {
            "queries": self._m["queries"].value,
            "engine_runs": self._m["engine_runs"].value,
            "coalesced": self._m["coalesced"].value,
            "coalesce_hit_rate": round(self.coalesce_hit_rate, 4),
            "quota_rejected": self._m["quota_rejected"].value,
            "shed": self._m["shed"].value,
            "timeouts": self._m["timeouts"].value,
            "errors": self._m["errors"].value,
            "inflight": len(self._inflight),
            "latency": self._m["latency"].summary(),
            "pool": self.pool.describe(),
            "admission": self.admission.describe(),
        }

    async def drain(self) -> None:
        """Wait for every in-flight run to settle (shutdown helper)."""
        tasks = list(self._inflight.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def aclose(self) -> None:
        """Stop admitting, drain in-flight work, release the pool."""
        self._closed = True
        await self.drain()
        self.close()

    def close(self) -> None:
        """Synchronous teardown (tests; prefer :meth:`aclose`)."""
        self._closed = True
        self._executor.shutdown(wait=True)
        self.pool.clear()
