"""The always-on analytics service: async queries over warm sessions.

:class:`AnalyticsService` is the in-process core the HTTP daemon, the
CLI, tests, and :class:`~repro.serve.bench.ServeBench` all drive. One
query's life:

1. **Admission** — the tenant's token bucket is charged
   (:class:`~repro.serve.quotas.AdmissionController`); over-quota
   traffic fails fast with
   :class:`~repro.errors.QuotaExceededError`.
2. **Session** — the warm pool hands back the pre-loaded engine for
   (dataset, profile); a cold first query builds it off the event loop.
3. **Coalescing** — the query's content key
   (:func:`~repro.serve.protocol.query_key`) is looked up in the
   in-flight table. A hit rides the existing engine run; a miss first
   checks the bounded pending-run count (past it, load is shed with
   :class:`~repro.errors.SessionPoolExhaustedError` — never queued
   invisibly) and then schedules exactly one engine run.
4. **Execution** — the kernel runs in a worker thread, serialized per
   session (one physical accelerator's crossbar state per session).
5. **Deadline** — each waiter applies its own ``timeout_s``
   (:class:`~repro.errors.QueryTimeoutError`); the shared run is
   shielded, so one impatient client cannot cancel work others wait on.

Every step is metered through :mod:`repro.obs.metrics` under stable
``serve.*`` names — instruments are get-or-created once per service,
never per query or per session, so warm-pool reuse cannot leak or
double-register collectors. ``/metrics`` exposition reuses
:mod:`repro.obs.export` unchanged.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..config import ArchConfig
from ..core.reuse import get_reuse_cache, reuse_scope
from ..errors import (
    AlgorithmError,
    ConfigError,
    QueryTimeoutError,
    QuotaExceededError,
    SessionPoolExhaustedError,
)
from ..obs import context as obs_context
from ..obs.flight import FlightRecorder
from ..obs.log import get_logger
from ..obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    get_metrics,
)
from ..obs.slo import SLOConfig, SLOTracker
from ..obs.trace import get_tracer
from .pool import SessionPool, WarmSession
from .protocol import (
    MutateRequest,
    QueryRequest,
    QueryResult,
    modelled_stats,
    query_key,
    summarize_result,
)
from .quotas import AdmissionController

log = get_logger("repro.serve")

#: Span-buffer bound installed when the service enables tracing: keeps
#: a long-lived daemon's tracer memory constant while leaving plenty of
#: history for ad-hoc exports.
TRACER_MAX_RECORDS = 20_000


class AnalyticsService:
    """Asyncio query service over a warm session pool.

    Parameters
    ----------
    arch_config:
        Machine configuration every warm engine uses (Table I default).
    max_sessions:
        Warm-pool capacity (LRU-evicted, idle sessions only).
    max_pending:
        Bound on distinct in-flight engine runs; excess distinct
        queries are shed. Coalesced duplicates are exempt.
    quota_rate, quota_burst:
        Per-tenant token-bucket policy; ``quota_rate=None`` disables
        metering.
    workers:
        Engine worker threads (default: ``max_pending`` capped at 8).
    default_timeout_s:
        Deadline applied when a query names none.
    run_delay_s:
        Artificial per-run kernel latency (seconds). Testing/benchmark
        knob that widens the coalescing window deterministically; keep
        0 in production.
    registry:
        Metrics registry to meter into (default: the process-wide one).
    flight_capacity:
        Flight-recorder keep-ring size (completed request traces
        retained for ``/debug/flight`` / ``repro trace-grep``).
    slo:
        Service-level objectives (availability + latency targets and
        burn-rate windows); default :class:`~repro.obs.slo.SLOConfig`.
    enable_tracing:
        Turn the process tracer on (bounded buffer) so request spans —
        HTTP, service, session, and the five modelled phases — are
        recorded and routed to the flight recorder. On by default;
        batch-style embedders can opt out.
    """

    def __init__(
        self,
        arch_config: Optional[ArchConfig] = None,
        max_sessions: int = 8,
        max_pending: int = 64,
        quota_rate: Optional[float] = None,
        quota_burst: float = 64,
        workers: Optional[int] = None,
        default_timeout_s: float = 60.0,
        run_delay_s: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
        flight_capacity: int = 256,
        slo: Optional[SLOConfig] = None,
        enable_tracing: bool = True,
    ) -> None:
        if max_pending < 1:
            raise ConfigError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if default_timeout_s <= 0:
            raise ConfigError(
                f"default_timeout_s must be > 0, got {default_timeout_s}"
            )
        registry = registry if registry is not None else get_metrics()
        self.registry = registry
        self.pool = SessionPool(
            arch_config, max_sessions=max_sessions, registry=registry
        )
        self.admission = AdmissionController(quota_rate, quota_burst)
        self.max_pending = max_pending
        self.default_timeout_s = default_timeout_s
        self.run_delay_s = run_delay_s
        self._executor = ThreadPoolExecutor(
            max_workers=workers
            if workers is not None
            else min(max_pending, 8),
            thread_name_prefix="repro-serve",
        )
        self._inflight: Dict[str, "asyncio.Task"] = {}
        #: Coalescing key -> the leader request's trace id, so
        #: followers can link their trace to the run they rode.
        self._inflight_trace: Dict[str, str] = {}
        self._session_locks: Dict[str, "asyncio.Lock"] = {}
        self._closed = False
        # Request-scoped observability: the SLO tracker accounts every
        # finished request; the flight recorder tail-samples completed
        # traces, fed spans through a tracer sink.
        self.slo_config = slo if slo is not None else SLOConfig()
        self.slo = SLOTracker(self.slo_config)
        self.flight = FlightRecorder(
            capacity=flight_capacity,
            slow_threshold_s=self.slo_config.latency_target_s,
        )
        self._tracer = get_tracer()
        self._tracing_enabled_here = False
        if enable_tracing:
            if not self._tracer.enabled:
                self._tracer.enabled = True
                self._tracing_enabled_here = True
            if self._tracer.max_records is None:
                self._tracer.max_records = TRACER_MAX_RECORDS
            self._tracer.add_sink(self.flight.observe_span)
        # Instruments are created exactly once per service under fixed
        # names; re-instantiating a service over the same registry
        # get-or-creates the same objects (no duplicates, no kind
        # conflicts) — the warm-pool double-registration audit.
        self._m = {
            "queries": registry.counter("serve.queries"),
            "engine_runs": registry.counter("serve.engine_runs"),
            "coalesced": registry.counter("serve.coalesced"),
            "quota_rejected": registry.counter("serve.quota_rejected"),
            "shed": registry.counter("serve.shed"),
            "timeouts": registry.counter("serve.timeouts"),
            "errors": registry.counter("serve.errors"),
            "inflight": registry.gauge("serve.inflight"),
            "sessions": registry.gauge("serve.sessions_resident"),
            "latency": registry.histogram(
                "serve.latency_s", buckets=DEFAULT_LATENCY_BUCKETS
            ),
            "engine_run": registry.histogram("serve.engine_run_s"),
            "mutations": registry.counter("serve.mutations"),
            "mutate_latency": registry.histogram(
                "serve.latency_mutate_s", buckets=DEFAULT_LATENCY_BUCKETS
            ),
            # Cumulative modelled energy across every engine run, total
            # plus the ledger's per-category breakdown (labelled by the
            # EnergyBreakdown category names, a fixed finite set).
            "energy_j": registry.counter("serve.energy_j"),
            "energy_by_category": registry.labeled_counter(
                "serve.energy_category_j", labelnames=("category",)
            ),
        }
        # Per-algorithm latency histograms: a fixed, finite name set
        # (the servable algorithms), registered up front — never minted
        # from query content.
        from .protocol import SERVABLE_ALGORITHMS

        self._latency_by_algorithm = {
            algorithm: registry.histogram(
                f"serve.latency_s.{algorithm}"
            )
            for algorithm in SERVABLE_ALGORITHMS
        }

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    async def submit(self, query: QueryRequest) -> QueryResult:
        """Serve one query; returns its :class:`QueryResult`.

        Raises the typed service errors documented in
        :mod:`repro.errors`; malformed queries fail in
        :class:`~repro.serve.protocol.QueryRequest` before ever
        reaching here.

        The query runs under a trace context: the ambient one when the
        caller (the HTTP frontend) already activated it from an inbound
        ``traceparent`` header, a freshly minted root otherwise. Every
        span and log line the query causes carries that trace id; the
        flight recorder accumulates its spans and tail-samples the
        finished trace; the SLO tracker accounts the outcome.
        """
        if self._closed:
            raise SessionPoolExhaustedError("service is shut down")
        ctx = obs_context.current()
        token = None
        if ctx is None:
            ctx = obs_context.new_root()
            token = obs_context.activate(ctx)
        start = time.perf_counter()
        self._m["queries"].inc()
        self.flight.begin(
            ctx.trace_id,
            dataset=query.dataset,
            algorithm=query.algorithm,
            profile=query.profile,
            tenant=query.tenant,
        )
        status, detail, server_fault = "ok", None, False
        try:
            with self._tracer.span(
                "serve.query", category="serve",
                dataset=query.dataset, algorithm=query.algorithm,
                tenant=query.tenant,
            ):
                return await self._serve(query, ctx, start)
        except QuotaExceededError as exc:
            # A client rejection: recorded, but it does not spend the
            # availability error budget.
            status, detail = "quota_rejected", str(exc)
            raise
        except QueryTimeoutError as exc:
            status, detail, server_fault = "timeout", str(exc), True
            raise
        except SessionPoolExhaustedError as exc:
            status, detail, server_fault = "shed", str(exc), True
            raise
        except Exception as exc:
            status, detail, server_fault = "error", str(exc), True
            raise
        finally:
            latency = time.perf_counter() - start
            self.slo.record(ok=not server_fault, latency_s=latency)
            self.flight.finish(
                ctx.trace_id,
                status=status,
                error=detail,
                latency_s=latency,
            )
            if token is not None:
                obs_context.restore(token)

    async def _serve(
        self, query: QueryRequest, ctx: "obs_context.TraceContext",
        start: float,
    ) -> QueryResult:
        """The admission → session → coalesce → wait pipeline."""
        try:
            self.admission.admit(query.tenant)
        except QuotaExceededError:
            self._m["quota_rejected"].inc()
            raise
        session = await self._session_for(query)
        key = query_key(session.content_key, query)
        # No awaits between the in-flight lookup and registration: the
        # check-then-register step is atomic on the event loop.
        task = self._inflight.get(key)
        coalesced = task is not None
        if coalesced:
            self._m["coalesced"].inc()
            leader_trace = self._inflight_trace.get(key)
            if leader_trace is not None and leader_trace != ctx.trace_id:
                # Link the follower's trace to the leader's run: a
                # zero-duration span naming the leader trace, mirrored
                # into the follower's flight-recorder entry.
                self._tracer.add_span(
                    "serve.coalesced", "serve",
                    ts_us=time.time_ns() // 1_000, dur_us=0,
                    args={"leader_trace": leader_trace, "key": key},
                )
                self.flight.annotate(
                    ctx.trace_id, leader_trace_id=leader_trace
                )
        else:
            if len(self._inflight) >= self.max_pending:
                self._m["shed"].inc()
                raise SessionPoolExhaustedError(
                    f"{len(self._inflight)} queries already in flight "
                    f"(max_pending={self.max_pending}); load shed"
                )
            # create_task copies the current contextvars context, so
            # the leader's trace context follows the run.
            task = asyncio.get_running_loop().create_task(
                self._execute(session, query, key)
            )
            self._inflight[key] = task
            self._inflight_trace[key] = ctx.trace_id
            task.add_done_callback(
                lambda _t, _key=key: (
                    self._inflight.pop(_key, None),
                    self._inflight_trace.pop(_key, None),
                )
            )
            self._m["inflight"].set(len(self._inflight))
        timeout = (
            query.timeout_s
            if query.timeout_s is not None
            else self.default_timeout_s
        )
        try:
            payload, modelled = await asyncio.wait_for(
                asyncio.shield(task), timeout
            )
        except asyncio.TimeoutError:
            self._m["timeouts"].inc()
            raise QueryTimeoutError(
                f"query {query.algorithm} on {query.dataset} missed its "
                f"{timeout}s deadline (the engine run continues for "
                f"coalesced waiters)"
            ) from None
        latency = time.perf_counter() - start
        self._m["latency"].observe(latency, exemplar=ctx.trace_id)
        self._latency_by_algorithm[query.algorithm].observe(latency)
        return QueryResult(
            key=key,
            dataset=query.dataset,
            algorithm=query.algorithm,
            profile=query.profile,
            tenant=query.tenant,
            payload=payload,
            modelled=modelled,
            latency_s=latency,
            coalesced=coalesced,
            trace_id=ctx.trace_id,
        )

    async def _session_for(self, query: QueryRequest) -> WarmSession:
        """Warm-pool lookup; cold builds happen off the event loop."""
        session = self.pool.get(query.session_selector)
        if session is not None:
            return session
        try:
            # wrap() carries the trace context into the pool thread so
            # pool.session_created log lines name the triggering query.
            return await asyncio.get_running_loop().run_in_executor(
                self._executor,
                obs_context.wrap(self.pool.acquire),
                query.dataset,
                query.profile,
            )
        except SessionPoolExhaustedError:
            self._m["shed"].inc()
            raise

    async def _execute(
        self, session: WarmSession, query: QueryRequest, key: str
    ) -> Tuple[Dict[str, Any], Dict[str, float]]:
        """The one engine run a coalescing key resolves to."""
        lock = self._session_locks.setdefault(
            session.content_key, asyncio.Lock()
        )
        try:
            async with lock:  # one crossbar state, one run at a time
                session.busy = True
                try:
                    payload, modelled = await asyncio.get_running_loop(
                    ).run_in_executor(
                        self._executor,
                        obs_context.wrap(self._run_engine),
                        session,
                        query,
                    )
                finally:
                    session.busy = False
                    session.queries_served += 1
            self._m["sessions"].set(len(self.pool))
            return payload, modelled
        except Exception:
            self._m["errors"].inc()
            raise
        finally:
            self._m["inflight"].set(max(len(self._inflight) - 1, 0))

    def _run_engine(
        self, session: WarmSession, query: QueryRequest
    ) -> Tuple[Dict[str, Any], Dict[str, float]]:
        """Worker-thread body: the actual kernel dispatch.

        Runs under a copy of the leader request's trace context (see
        :func:`repro.obs.context.wrap`), so the session span opened
        here, the nested ``engine.run`` span, and the five modelled
        phase spans the controller injects all share the trace id.

        The run executes inside a :func:`~repro.core.reuse.reuse_scope`
        so the cross-iteration reuse layer's hits/misses are tallied
        per query (``modelled["reuse_hit_rate"]``). Warm per-algorithm
        state the session holds is injected server-side — arrays never
        travel in JSON params: an ``incremental`` PageRank picks up the
        session's previous ranks as its warm start, and the first WCC
        after a mutation starts from the migrated labels + seed
        frontier instead of a cold full propagation.
        """
        if self.run_delay_s > 0:
            time.sleep(self.run_delay_s)
        params = dict(query.params)
        if query.algorithm == "pagerank" and params.get("incremental"):
            warm = session.algo_state.get("pagerank_ranks")
            if warm is not None and "warm_ranks" not in params:
                params["warm_ranks"] = warm
        elif query.algorithm == "wcc":
            warm = session.algo_state.pop("wcc_warm", None)
            if warm is not None and "warm_labels" not in params:
                params["warm_labels"] = warm[0]
                params["seed_vertices"] = warm[1]
        start = time.perf_counter()
        try:
            with self._tracer.span(
                "serve.session", category="session",
                dataset=query.dataset, profile=query.profile,
                content_key=session.content_key,
            ), reuse_scope() as scope:
                result = session.engine.run(
                    query.algorithm, **params
                )
        except TypeError as exc:
            # Bad keyword against the kernel signature: a client error,
            # not a programming error in the service.
            raise AlgorithmError(
                f"invalid params for {query.algorithm!r}: {exc}"
            ) from None
        run_s = time.perf_counter() - start
        if query.algorithm == "pagerank":
            session.algo_state["pagerank_ranks"] = np.array(
                result.ranks, dtype=np.float64
            )
        elif query.algorithm == "wcc":
            session.algo_state["wcc_labels"] = np.array(
                result.labels, dtype=np.int64
            )
        self._m["engine_runs"].inc()
        self._m["engine_run"].observe(run_s)
        modelled = modelled_stats(result.stats)
        modelled["reuse_hit_rate"] = round(scope.hit_rate, 4)
        if modelled.get("energy_j"):
            self._m["energy_j"].inc(modelled["energy_j"])
        for category, joules in modelled.get("energy", {}).items():
            if joules and category != "total":
                self._m["energy_by_category"].inc(
                    joules, category=category
                )
        log.debug(
            "serve.engine_run", dataset=query.dataset,
            algorithm=query.algorithm, run_s=round(run_s, 6),
        )
        return summarize_result(query.algorithm, result), modelled

    # ------------------------------------------------------------------
    # Mutation path
    # ------------------------------------------------------------------
    async def mutate(self, request: MutateRequest) -> Dict[str, Any]:
        """Apply one edge-mutation batch to a warm session's graph.

        Admission-controlled like a query (mutations draw from the
        same tenant bucket). The batch is serialized against kernel
        runs on the same session — one crossbar state, one writer —
        and applied off the event loop
        (:meth:`~repro.serve.pool.WarmSession.apply_mutation`). The
        response summarizes the new graph identity and how much of the
        reuse cache survived (sub-shard-granular migration vs.
        invalidation). Queries submitted after this returns see the
        mutated graph; in-flight runs finish against the old one.
        """
        if self._closed:
            raise SessionPoolExhaustedError("service is shut down")
        ctx = obs_context.current()
        token = None
        if ctx is None:
            ctx = obs_context.new_root()
            token = obs_context.activate(ctx)
        start = time.perf_counter()
        try:
            with self._tracer.span(
                "serve.mutate", category="serve",
                dataset=request.dataset, tenant=request.tenant,
            ):
                try:
                    self.admission.admit(request.tenant)
                except QuotaExceededError:
                    self._m["quota_rejected"].inc()
                    raise
                session = await self._session_for(request)
                lock = self._session_locks.setdefault(
                    session.content_key, asyncio.Lock()
                )
                async with lock:
                    session.busy = True
                    try:
                        summary = await asyncio.get_running_loop(
                        ).run_in_executor(
                            self._executor,
                            obs_context.wrap(session.apply_mutation),
                            request.inserts,
                            request.deletes,
                        )
                    finally:
                        session.busy = False
                latency = time.perf_counter() - start
                self._m["mutations"].inc()
                self._m["mutate_latency"].observe(
                    latency, exemplar=ctx.trace_id
                )
                summary["dataset"] = request.dataset
                summary["profile"] = request.profile
                summary["latency_s"] = latency
                summary["trace_id"] = ctx.trace_id
                return summary
        except Exception:
            self._m["errors"].inc()
            raise
        finally:
            if token is not None:
                obs_context.restore(token)

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------
    def preload(self, datasets, profile: str = "bench") -> None:
        """Synchronously warm sessions for the given dataset keys."""
        for dataset in datasets:
            self.pool.acquire(dataset, profile)
        self._m["sessions"].set(len(self.pool))

    @property
    def coalesce_hit_rate(self) -> float:
        """Fraction of admitted queries served by an existing run."""
        queries = self._m["queries"].value
        return self._m["coalesced"].value / queries if queries else 0.0

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot (the /stats endpoint payload)."""
        return {
            "queries": self._m["queries"].value,
            "engine_runs": self._m["engine_runs"].value,
            "coalesced": self._m["coalesced"].value,
            "coalesce_hit_rate": round(self.coalesce_hit_rate, 4),
            "quota_rejected": self._m["quota_rejected"].value,
            "shed": self._m["shed"].value,
            "timeouts": self._m["timeouts"].value,
            "errors": self._m["errors"].value,
            "inflight": len(self._inflight),
            "energy_j": self._m["energy_j"].value,
            "energy_by_category": {
                key[0]: joules
                for key, joules in sorted(
                    self._m["energy_by_category"].series().items()
                )
            },
            "latency": self._m["latency"].summary(),
            "mutations": self._m["mutations"].value,
            "mutate_latency": self._m["mutate_latency"].summary(),
            "reuse": get_reuse_cache().describe(),
            "pool": self.pool.describe(),
            "admission": self.admission.describe(),
            "slo": self.slo.snapshot(),
            "flight": self.flight.describe(),
        }

    def readiness(self) -> Tuple[bool, Dict[str, bool]]:
        """Readiness checks for the ``/readyz`` endpoint.

        Distinct from liveness (``/healthz``: the loop answers at all):
        a ready service is accepting queries, has headroom in the
        pending-run table, can reach the shard store, and — when
        sessions were preloaded — still holds at least one warm. A
        cold-but-healthy service reports ``pool_warm`` true (first
        query warms lazily by design); only a pool that *lost* its
        sessions after serving reports false.
        """
        checks = {
            "accepting": not self._closed,
            "queue_headroom": len(self._inflight) < self.max_pending,
            "pool_warm": (
                len(self.pool) > 0
                or self._m["engine_runs"].value == 0
            ),
            "store_reachable": self._store_reachable(),
        }
        return all(checks.values()), checks

    @staticmethod
    def _store_reachable() -> bool:
        """Whether the mmap shard store root exists or can be created."""
        try:
            from ..storage.mmap_store import get_store

            root = get_store().root
            if os.path.isdir(root):
                return True
            os.makedirs(root, exist_ok=True)
            return True
        except OSError:
            return False

    async def drain(self) -> None:
        """Wait for every in-flight run to settle (shutdown helper)."""
        tasks = list(self._inflight.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def aclose(self) -> None:
        """Stop admitting, drain in-flight work, release the pool."""
        self._closed = True
        await self.drain()
        self.close()

    def close(self) -> None:
        """Synchronous teardown (tests; prefer :meth:`aclose`)."""
        self._closed = True
        self._executor.shutdown(wait=True)
        self.pool.clear()
        # Detach from the process tracer and restore its enabled state
        # if this service flipped it — tests build many short-lived
        # services against one process and must not leak sinks.
        self._tracer.remove_sink(self.flight.observe_span)
        if self._tracing_enabled_here:
            self._tracer.enabled = False
            self._tracing_enabled_here = False
