"""Admission control: per-tenant token buckets and a bounded queue.

The service never builds an unbounded backlog. Every incoming query
passes two gates *before* any engine work is scheduled:

* a per-tenant **token bucket** — ``burst`` tokens deep, refilled at
  ``rate`` tokens/second — so one chatty tenant cannot starve the rest
  (:class:`~repro.errors.QuotaExceededError` when empty), and
* a **pending-query bound** enforced by the service on distinct
  in-flight engine runs — load past it is shed with
  :class:`~repro.errors.SessionPoolExhaustedError`, never queued
  invisibly (coalesced duplicates ride an existing run and are exempt:
  they add no engine work).

Both gates fail with typed errors so callers (and the HTTP front end,
via :func:`repro.errors.http_status_for`) can tell throttling from
saturation from failure.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..errors import ConfigError, QuotaExceededError


class TokenBucket:
    """Classic token bucket: ``burst`` capacity, ``rate`` tokens/s.

    ``rate=None`` disables metering (the bucket always admits).
    Refill is computed lazily from the elapsed monotonic time, so an
    idle bucket costs nothing.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ConfigError(f"quota rate must be > 0, got {rate}")
        if burst < 1:
            raise ConfigError(f"quota burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; returns whether they were."""
        if self.rate is None:
            return True
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens currently available (refilled to now)."""
        if self.rate is None:
            return float("inf")
        with self._lock:
            now = self._clock()
            return min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )


class AdmissionController:
    """Per-tenant quota enforcement for the analytics service.

    One :class:`TokenBucket` per tenant, created on first sight with
    the shared (rate, burst) policy. ``admit`` is the only gate the
    service calls; it raises rather than blocks, so admission can never
    deadlock the event loop.
    """

    def __init__(
        self,
        quota_rate: Optional[float] = None,
        quota_burst: float = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's bucket (created on first use)."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    self.quota_rate, self.quota_burst, self._clock
                )
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str) -> None:
        """Charge one query to the tenant; raises when over quota."""
        if not self.bucket(tenant).try_acquire():
            raise QuotaExceededError(
                f"tenant {tenant!r} is over quota "
                f"({self.quota_rate}/s, burst {self.quota_burst}); "
                f"retry later"
            )

    def describe(self) -> Dict[str, object]:
        """Introspection payload for the service's /stats endpoint."""
        with self._lock:
            tenants = {
                tenant: round(bucket.available, 3)
                if bucket.rate is not None
                else "unlimited"
                for tenant, bucket in self._buckets.items()
            }
        return {
            "quota_rate": self.quota_rate,
            "quota_burst": self.quota_burst,
            "tenants": tenants,
        }
