"""Always-on analytics service: async query API over warm sessions.

The serving layer of the reproduction — the counterpart of the batch
:class:`~repro.experiments.runner.RunRequest` API for the "heavy
traffic" half of the north star. See ``docs/serving.md`` for the
architecture and ``repro serve --help`` for the daemon.
"""

from .pool import SessionPool, WarmSession
from .protocol import (
    SERVABLE_ALGORITHMS,
    MutateRequest,
    QueryRequest,
    QueryResult,
    query_key,
    summarize_result,
)
from .quotas import AdmissionController, TokenBucket
from .server import AnalyticsService

__all__ = [
    "AdmissionController",
    "AnalyticsService",
    "MutateRequest",
    "QueryRequest",
    "QueryResult",
    "SERVABLE_ALGORITHMS",
    "SessionPool",
    "TokenBucket",
    "WarmSession",
    "query_key",
    "summarize_result",
]
