"""Query-level protocol of the always-on analytics service.

The batch layer asks "regenerate paper artifact X" through
:class:`~repro.experiments.runner.RunRequest`; the serving layer asks
"run algorithm A on pre-loaded graph G with parameters P" through
:class:`QueryRequest`. A query is content-addressed: its
:func:`query_key` folds the warm session's content key (graph
fingerprint + :class:`~repro.config.ArchConfig` fingerprint, the same
identity the layout cache uses) together with the algorithm and the
canonicalized parameter mapping, so two equal queries — whoever issued
them, whenever — share one key. The service coalesces concurrent
queries on exactly that key.

:class:`QueryResult` is transport-friendly: the raw kernel results
carry graph-sized numpy arrays, so :func:`summarize_result` compresses
them into a small JSON payload (checksums, counts, top-k) next to the
modelled hardware statistics.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

import numpy as np

from ..errors import AlgorithmError, ConfigError, DatasetError
from ..graphs.datasets import DATASETS, PROFILES

#: Algorithms the service accepts. ``gnn`` is excluded: its inputs
#: (feature/weight matrices) are not expressible in a JSON query.
SERVABLE_ALGORITHMS = ("pagerank", "bfs", "sssp", "wcc", "cf")

#: Tenant used when a query does not name one.
DEFAULT_TENANT = "default"


def canonical_params(params: Mapping[str, Any]) -> str:
    """The canonical JSON encoding of a parameter mapping.

    Sorted keys and JSON scalar coercion make logically equal mappings
    byte-equal, which is what the coalescing key relies on. Raises
    :class:`~repro.errors.ConfigError` on non-JSON values (arrays,
    objects) — those cannot travel over the wire anyway.
    """
    try:
        return json.dumps(dict(params), sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"query params must be JSON-serializable scalars: {exc}"
        ) from exc


@dataclass(frozen=True)
class QueryRequest:
    """One analytics query against a pre-loaded graph.

    Parameters
    ----------
    dataset:
        Table II dataset key (``"WV"``, ``"NF"``, ...). Case-insensitive.
    algorithm:
        One of :data:`SERVABLE_ALGORITHMS`.
    params:
        Keyword arguments forwarded to the kernel (e.g. ``source`` for
        BFS/SSSP, ``iterations`` for PageRank). JSON scalars only.
    profile:
        Dataset scale, as in the batch API (``tiny``/``bench``/``full``).
    tenant:
        Quota bucket this query draws from.
    timeout_s:
        Per-query deadline; ``None`` uses the service default.
    """

    dataset: str
    algorithm: str
    params: Mapping[str, Any] = field(default_factory=dict)
    profile: str = "bench"
    tenant: str = DEFAULT_TENANT
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dataset", str(self.dataset).upper())
        if self.dataset not in DATASETS:
            raise DatasetError(
                f"unknown dataset {self.dataset!r}; known: "
                f"{sorted(DATASETS)}"
            )
        if self.algorithm not in SERVABLE_ALGORITHMS:
            raise AlgorithmError(
                f"unknown algorithm {self.algorithm!r}; servable: "
                f"{list(SERVABLE_ALGORITHMS)}"
            )
        if self.profile not in PROFILES:
            raise ConfigError(
                f"unknown profile {self.profile!r}; expected one of "
                f"{PROFILES}"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ConfigError("tenant must be a non-empty string")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        # Canonicalize once; also validates JSON-serializability.
        object.__setattr__(
            self, "params", json.loads(canonical_params(self.params))
        )

    # ------------------------------------------------------------------
    @property
    def session_selector(self) -> tuple:
        """The warm-pool lookup key: which engine can serve this query."""
        return (self.dataset, self.profile)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the HTTP request body schema)."""
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "params": dict(self.params),
            "profile": self.profile,
            "tenant": self.tenant,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryRequest":
        """Build a validated request from a decoded JSON object."""
        if not isinstance(payload, Mapping):
            raise ConfigError("query payload must be a JSON object")
        unknown = set(payload) - {
            "dataset", "algorithm", "params", "profile", "tenant",
            "timeout_s",
        }
        if unknown:
            raise ConfigError(
                f"unknown query field(s): {sorted(unknown)}"
            )
        for required in ("dataset", "algorithm"):
            if required not in payload:
                raise ConfigError(f"query field {required!r} is required")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ConfigError("query field 'params' must be an object")
        return cls(
            dataset=payload["dataset"],
            algorithm=payload["algorithm"],
            params=params,
            profile=payload.get("profile", "bench"),
            tenant=payload.get("tenant", DEFAULT_TENANT),
            timeout_s=payload.get("timeout_s"),
        )


@dataclass(frozen=True)
class MutateRequest:
    """One edge-mutation batch against a warm session's graph.

    ``inserts``/``deletes`` are lists of ``[src, dst]`` pairs or
    ``[src, dst, weight]`` triples (JSON rows). Endpoint-range and
    shape validation happens against the live graph when the batch is
    applied (:func:`repro.graphs.graph.normalize_mutation`); here only
    the envelope is checked so malformed payloads fail before touching
    a session.
    """

    dataset: str
    inserts: Any = None
    deletes: Any = None
    profile: str = "bench"
    tenant: str = DEFAULT_TENANT

    def __post_init__(self) -> None:
        object.__setattr__(self, "dataset", str(self.dataset).upper())
        if self.dataset not in DATASETS:
            raise DatasetError(
                f"unknown dataset {self.dataset!r}; known: "
                f"{sorted(DATASETS)}"
            )
        if self.profile not in PROFILES:
            raise ConfigError(
                f"unknown profile {self.profile!r}; expected one of "
                f"{PROFILES}"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ConfigError("tenant must be a non-empty string")
        for name in ("inserts", "deletes"):
            batch = getattr(self, name)
            if batch is None:
                continue
            if not isinstance(batch, (list, tuple)):
                raise ConfigError(
                    f"mutation field {name!r} must be a list of "
                    f"[src, dst] or [src, dst, weight] rows"
                )
        if self.inserts is None and self.deletes is None:
            raise ConfigError(
                "a mutation needs at least one of inserts/deletes"
            )

    @property
    def session_selector(self) -> tuple:
        """The warm-pool lookup key: which session this batch mutates."""
        return (self.dataset, self.profile)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the HTTP request body schema)."""
        return {
            "dataset": self.dataset,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "profile": self.profile,
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MutateRequest":
        """Build a validated request from a decoded JSON object."""
        if not isinstance(payload, Mapping):
            raise ConfigError("mutate payload must be a JSON object")
        unknown = set(payload) - {
            "dataset", "inserts", "deletes", "profile", "tenant",
        }
        if unknown:
            raise ConfigError(
                f"unknown mutate field(s): {sorted(unknown)}"
            )
        if "dataset" not in payload:
            raise ConfigError("mutate field 'dataset' is required")
        return cls(
            dataset=payload["dataset"],
            inserts=payload.get("inserts"),
            deletes=payload.get("deletes"),
            profile=payload.get("profile", "bench"),
            tenant=payload.get("tenant", DEFAULT_TENANT),
        )


def query_key(session_content_key: str, query: QueryRequest) -> str:
    """The content-addressed identity of one query.

    ``session_content_key`` is the warm session's content key (graph
    fingerprint + config fingerprint, from
    :meth:`repro.serve.pool.WarmSession.content_key`); equal keys mean
    "same engine state, same algorithm, same parameters" — the sharing
    unit for request coalescing.
    """
    payload = "|".join(
        (
            session_content_key,
            query.algorithm,
            canonical_params(query.params),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def summarize_result(algorithm: str, result: Any) -> Dict[str, Any]:
    """Compress a kernel result into a small JSON payload.

    Serving returns summaries, not graph-sized arrays: enough for a
    client to consume (counts, extrema, top-k) and for tests to prove
    two queries did not cross-contaminate (checksums differ when the
    underlying arrays differ).
    """
    if algorithm == "pagerank":
        ranks = np.asarray(result.ranks, dtype=np.float64)
        top = np.argsort(ranks)[::-1][:5]
        return {
            "iterations": int(result.iterations),
            "num_vertices": int(ranks.size),
            "rank_sum": float(ranks.sum()),
            "checksum": _checksum(ranks),
            "top_vertices": [int(v) for v in top],
            "top_ranks": [float(ranks[v]) for v in top],
        }
    if algorithm in ("bfs", "sssp"):
        distances = np.asarray(result.distances, dtype=np.float64)
        reached = np.isfinite(distances)
        return {
            "source": int(result.source),
            "supersteps": int(result.supersteps),
            "num_vertices": int(distances.size),
            "reached": int(reached.sum()),
            "max_distance": float(distances[reached].max())
            if reached.any()
            else 0.0,
            "checksum": _checksum(np.where(reached, distances, -1.0)),
        }
    if algorithm == "wcc":
        labels = np.asarray(result.labels)
        sizes = result.component_sizes()
        return {
            "supersteps": int(result.supersteps),
            "num_vertices": int(labels.size),
            "num_components": int(result.num_components),
            "largest_component": int(sizes[0]) if sizes.size else 0,
            "checksum": _checksum(labels.astype(np.float64)),
        }
    if algorithm == "cf":
        user = np.asarray(result.user_features, dtype=np.float64)
        item = np.asarray(result.item_features, dtype=np.float64)
        return {
            "epochs": int(result.epochs),
            "num_users": int(user.shape[0]),
            "num_items": int(item.shape[0]),
            "num_features": int(user.shape[1]),
            "checksum": _checksum(np.concatenate(
                (user.ravel(), item.ravel())
            )),
        }
    raise AlgorithmError(f"no result summary for algorithm {algorithm!r}")


def _checksum(values: np.ndarray) -> str:
    """Stable content digest of a float array (result identity)."""
    return hashlib.sha256(
        np.ascontiguousarray(values, dtype=np.float64).tobytes()
    ).hexdigest()[:16]


@dataclass(frozen=True)
class QueryResult:
    """What the service returns for one query.

    ``coalesced`` is per-request: of N identical concurrent queries,
    exactly one carries ``coalesced=False`` (it triggered the engine
    run) and the other N-1 carry ``True``. ``latency_s`` is this
    request's service-side wall time (admission to response), not the
    shared engine run's. ``trace_id`` is the request's distributed
    trace id (the same one in the ``traceparent`` response header,
    every span, and every log line the request emitted) — coalesced
    followers keep their *own* trace id and link the leader's in their
    flight-recorder entry.
    """

    key: str
    dataset: str
    algorithm: str
    profile: str
    tenant: str
    payload: Dict[str, Any]
    modelled: Dict[str, float]
    latency_s: float
    coalesced: bool
    trace_id: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the HTTP response body schema)."""
        return {
            "key": self.key,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "profile": self.profile,
            "tenant": self.tenant,
            "payload": dict(self.payload),
            "modelled": dict(self.modelled),
            "latency_s": self.latency_s,
            "coalesced": self.coalesced,
            "trace_id": self.trace_id,
        }


def modelled_stats(stats: Any) -> Dict[str, Any]:
    """The modelled hardware statistics a result travels with.

    When the run priced energy, the full
    :class:`~repro.energy.ledger.EnergyBreakdown` rides along under
    ``"energy"`` (category name -> joules), so a query response carries
    its own hardware cost, not just the total.
    """
    out: Dict[str, Any] = {
        "total_s": float(stats.total_time_s),
        "load_s": float(stats.load_time_s),
        "compute_s": float(stats.compute_time_s),
        "energy_j": float(stats.total_energy_j),
        "passes": float(stats.passes),
    }
    energy = getattr(stats, "energy", None)
    if energy is not None:
        out["energy"] = {
            category: float(joules)
            for category, joules in energy.as_dict().items()
        }
    return out
