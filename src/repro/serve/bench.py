"""ServeBench: serving-latency measurement through the bench store.

Every batch-side speedup already lands in ``BENCH_<suite>.json``
trajectories; this workload gives the *serving* path the same
treatment, so later engine/cache/pool work gets a p50/p99 number, not
just a kernel median. One run = one mixed query burst against a fresh
in-process :class:`~repro.serve.server.AnalyticsService`:

* duplicate queries (same graph, algorithm, params) issued
  concurrently, proving the coalescing window under load;
* distinct-parameter variants of the same algorithm, proving they do
  *not* coalesce;
* all five servable algorithms, collaborative filtering included.

The collected metrics are flat bench-store values:
``serve.latency_p50_s`` / ``serve.latency_p99_s`` (per-request service
latency percentiles), ``serve.coalesce_hit_rate``, and the raw
query/engine-run counts. :mod:`repro.obs.bench` registers this as the
``serve.burst`` workload of the ``serve`` suite, appending to
``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry
from .protocol import QueryRequest
from .server import AnalyticsService


def default_burst(profile: str) -> Tuple[QueryRequest, ...]:
    """The standard mixed burst (fixed composition, so trajectories
    stay comparable): 18 queries resolving to 7 distinct engine runs."""
    mk = lambda alg, params, dataset="WV": QueryRequest(  # noqa: E731
        dataset=dataset, algorithm=alg, params=params, profile=profile
    )
    return (
        # 4-way duplicate PageRank (coalesces to one run) ...
        *(mk("pagerank", {"iterations": 5}) for _ in range(4)),
        # ... plus a distinct-parameter variant (must NOT coalesce).
        mk("pagerank", {"iterations": 10}),
        *(mk("bfs", {"source": 0}) for _ in range(3)),
        *(mk("sssp", {"source": 0}) for _ in range(3)),
        *(mk("wcc", {}) for _ in range(3)),
        *(
            mk(
                "cf",
                {"num_features": 4, "epochs": 1},
                dataset="NF",
            )
            for _ in range(4)
        ),
    )


@dataclass
class ServeBench:
    """One reproducible serving burst; ``run()`` returns flat metrics.

    ``run_delay_s`` injects a small artificial kernel latency so the
    coalescing window is deterministic across hosts (without it, a
    fast machine could finish the first tiny-profile run before the
    event loop has admitted the duplicates, making the hit rate
    noise). It inflates every latency by the same constant, so
    percentile *trajectories* remain comparable.
    """

    profile: str = "tiny"
    run_delay_s: float = 0.002
    max_pending: int = 64
    workers: int = 4
    results: List[Dict[str, float]] = field(default_factory=list)

    def queries(self) -> Tuple[QueryRequest, ...]:
        return default_burst(self.profile)

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, float]:
        """Issue the burst; returns the bench-store metric mapping."""
        return asyncio.run(self._run())

    async def _run(self) -> Dict[str, float]:
        # A private registry keeps the burst's counters per-run (the
        # process registry would accumulate across bench repeats).
        service = AnalyticsService(
            max_pending=self.max_pending,
            workers=self.workers,
            run_delay_s=self.run_delay_s,
            registry=MetricsRegistry(),
        )
        try:
            burst = self.queries()
            # Warm the pool outside the measured burst: serving
            # latency, not cold-start latency, is the tracked metric.
            await asyncio.gather(
                *(
                    service.submit(query)
                    for query in {
                        q.session_selector: q for q in burst
                    }.values()
                )
            )
            warm_runs = service.stats()["engine_runs"]
            results = await asyncio.gather(
                *(service.submit(query) for query in burst)
            )
            stats = service.stats()
            latencies = np.array(
                [r.latency_s for r in results], dtype=np.float64
            )
            return {
                "serve.latency_p50_s": float(
                    np.percentile(latencies, 50)
                ),
                "serve.latency_p99_s": float(
                    np.percentile(latencies, 99)
                ),
                "serve.latency_mean_s": float(latencies.mean()),
                "serve.coalesce_hit_rate": float(
                    stats["coalesced"] / len(burst)
                ),
                "serve.queries": float(len(burst)),
                "serve.engine_runs": float(
                    stats["engine_runs"] - warm_runs
                ),
                "serve.shed": float(stats["shed"]),
                "serve.errors": float(stats["errors"]),
            }
        finally:
            await service.aclose()
