"""ServeBench: serving-latency measurement through the bench store.

Every batch-side speedup already lands in ``BENCH_<suite>.json``
trajectories; this workload gives the *serving* path the same
treatment, so later engine/cache/pool work gets a p50/p99 number, not
just a kernel median. One run = one mixed query burst against a fresh
in-process :class:`~repro.serve.server.AnalyticsService`:

* duplicate queries (same graph, algorithm, params) issued
  concurrently, proving the coalescing window under load;
* distinct-parameter variants of the same algorithm, proving they do
  *not* coalesce;
* all five servable algorithms, collaborative filtering included.

The collected metrics are flat bench-store values:
``serve.latency_p50_s`` / ``serve.latency_p99_s`` (per-request service
latency percentiles), ``serve.coalesce_hit_rate``, and the raw
query/engine-run counts. :mod:`repro.obs.bench` registers this as the
``serve.burst`` workload of the ``serve`` suite, appending to
``BENCH_serve.json``.

:class:`MutateBench` gives the mutable-graph path the same treatment:
seeded edge-mutation batches against a warm session, each followed by
an incremental PageRank re-query, recording mutate/re-query latency
percentiles and the per-query reuse hit rate (the ``serve.mutate``
workload of the same suite).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry
from .protocol import MutateRequest, QueryRequest
from .server import AnalyticsService


def default_burst(profile: str) -> Tuple[QueryRequest, ...]:
    """The standard mixed burst (fixed composition, so trajectories
    stay comparable): 18 queries resolving to 7 distinct engine runs."""
    mk = lambda alg, params, dataset="WV": QueryRequest(  # noqa: E731
        dataset=dataset, algorithm=alg, params=params, profile=profile
    )
    return (
        # 4-way duplicate PageRank (coalesces to one run) ...
        *(mk("pagerank", {"iterations": 5}) for _ in range(4)),
        # ... plus a distinct-parameter variant (must NOT coalesce).
        mk("pagerank", {"iterations": 10}),
        *(mk("bfs", {"source": 0}) for _ in range(3)),
        *(mk("sssp", {"source": 0}) for _ in range(3)),
        *(mk("wcc", {}) for _ in range(3)),
        *(
            mk(
                "cf",
                {"num_features": 4, "epochs": 1},
                dataset="NF",
            )
            for _ in range(4)
        ),
    )


@dataclass
class ServeBench:
    """One reproducible serving burst; ``run()`` returns flat metrics.

    ``run_delay_s`` injects a small artificial kernel latency so the
    coalescing window is deterministic across hosts (without it, a
    fast machine could finish the first tiny-profile run before the
    event loop has admitted the duplicates, making the hit rate
    noise). It inflates every latency by the same constant, so
    percentile *trajectories* remain comparable.
    """

    profile: str = "tiny"
    run_delay_s: float = 0.002
    max_pending: int = 64
    workers: int = 4
    results: List[Dict[str, float]] = field(default_factory=list)

    def queries(self) -> Tuple[QueryRequest, ...]:
        return default_burst(self.profile)

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, float]:
        """Issue the burst; returns the bench-store metric mapping."""
        return asyncio.run(self._run())

    async def _run(self) -> Dict[str, float]:
        # A private registry keeps the burst's counters per-run (the
        # process registry would accumulate across bench repeats).
        service = AnalyticsService(
            max_pending=self.max_pending,
            workers=self.workers,
            run_delay_s=self.run_delay_s,
            registry=MetricsRegistry(),
        )
        try:
            burst = self.queries()
            # Warm the pool outside the measured burst: serving
            # latency, not cold-start latency, is the tracked metric.
            await asyncio.gather(
                *(
                    service.submit(query)
                    for query in {
                        q.session_selector: q for q in burst
                    }.values()
                )
            )
            warm_runs = service.stats()["engine_runs"]
            results = await asyncio.gather(
                *(service.submit(query) for query in burst)
            )
            stats = service.stats()
            latencies = np.array(
                [r.latency_s for r in results], dtype=np.float64
            )
            return {
                "serve.latency_p50_s": float(
                    np.percentile(latencies, 50)
                ),
                "serve.latency_p99_s": float(
                    np.percentile(latencies, 99)
                ),
                "serve.latency_mean_s": float(latencies.mean()),
                "serve.coalesce_hit_rate": float(
                    stats["coalesced"] / len(burst)
                ),
                "serve.queries": float(len(burst)),
                "serve.engine_runs": float(
                    stats["engine_runs"] - warm_runs
                ),
                "serve.shed": float(stats["shed"]),
                "serve.errors": float(stats["errors"]),
            }
        finally:
            await service.aclose()


@dataclass
class MutateBench:
    """Mutate/re-query cycles against a warm session; flat metrics.

    One run = ``rounds`` cycles of (edge mutation batch → incremental
    PageRank re-query) against a session whose ranks converged before
    measurement started. This is the serving cost of a *changing*
    graph: how long a mutation takes to rebind the session (grid
    derivation, layout re-warm, reuse-cache migration) and how fast
    the next query answers from warm state instead of a cold
    recompute. The mutation batches are seeded, so every run applies
    the same edit sequence and trajectories stay comparable.
    """

    profile: str = "tiny"
    rounds: int = 4
    batch: int = 8
    max_pending: int = 64
    workers: int = 4

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, float]:
        """Run the cycles; returns the bench-store metric mapping."""
        return asyncio.run(self._run())

    async def _run(self) -> Dict[str, float]:
        # Private registry, like ServeBench: per-run counters.
        service = AnalyticsService(
            max_pending=self.max_pending,
            workers=self.workers,
            registry=MetricsRegistry(),
        )
        try:
            converge = QueryRequest(
                dataset="WV", algorithm="pagerank",
                params={"iterations": 30, "tolerance": 1e-5},
                profile=self.profile,
            )
            # Warm the session and converge ranks outside measurement:
            # the tracked numbers are steady-state mutate/re-query
            # costs, not cold-start.
            await service.submit(converge)
            sessions = service.stats()["pool"]["sessions"]
            num_vertices = int(sessions[0]["vertices"])
            rng = np.random.default_rng(17)
            mutate_lat: List[float] = []
            requery_lat: List[float] = []
            hit_rates: List[float] = []
            carried = invalidated = 0
            for _ in range(self.rounds):
                inserts = rng.integers(
                    0, num_vertices, size=(self.batch, 2)
                )
                deletes = rng.integers(
                    0, num_vertices, size=(self.batch // 2, 2)
                )
                summary = await service.mutate(
                    MutateRequest(
                        dataset="WV",
                        inserts=inserts.tolist(),
                        deletes=deletes.tolist(),
                        profile=self.profile,
                    )
                )
                mutate_lat.append(float(summary["latency_s"]))
                carried += int(summary["reuse_carried"])
                invalidated += int(summary["reuse_invalidated"])
                result = await service.submit(
                    QueryRequest(
                        dataset="WV", algorithm="pagerank",
                        params={
                            "iterations": 30, "tolerance": 1e-5,
                            "incremental": True,
                        },
                        profile=self.profile,
                    )
                )
                requery_lat.append(float(result.latency_s))
                hit_rates.append(
                    float(result.modelled.get("reuse_hit_rate", 0.0))
                )
            stats = service.stats()
            mutate_arr = np.array(mutate_lat, dtype=np.float64)
            requery_arr = np.array(requery_lat, dtype=np.float64)
            return {
                "serve.latency_mutate_p50_s": float(
                    np.percentile(mutate_arr, 50)
                ),
                "serve.latency_mutate_p99_s": float(
                    np.percentile(mutate_arr, 99)
                ),
                "serve.latency_requery_p50_s": float(
                    np.percentile(requery_arr, 50)
                ),
                "serve.latency_requery_p99_s": float(
                    np.percentile(requery_arr, 99)
                ),
                "reuse.hit_rate": float(np.mean(hit_rates)),
                "serve.mutations": float(stats["mutations"]),
                "serve.mutate_reuse_carried": float(carried),
                "serve.mutate_reuse_invalidated": float(invalidated),
                "serve.errors": float(stats["errors"]),
            }
        finally:
            await service.aclose()
