"""Minimal HTTP/1.1 front end for the analytics service.

Hand-rolled on ``asyncio`` streams — the repository deliberately takes
no web-framework dependency — and small on purpose: four routes, JSON
bodies, one connection per request (``Connection: close``).

Routes
------
``POST /query``
    Body: the :meth:`~repro.serve.protocol.QueryRequest.to_dict`
    schema. Response: a
    :meth:`~repro.serve.protocol.QueryResult.to_dict` payload.
    Failures map to statuses through
    :func:`repro.errors.http_status_for` — 429 over quota, 503 shed,
    504 deadline, 400 malformed — with a
    ``{"error": <class>, "message": <str>}`` body.
``GET /metrics``
    The process metrics registry as OpenMetrics text
    (:mod:`repro.obs.export`) — the Prometheus scrape target, covering
    the ``serve.*`` family and everything else the process recorded.
``GET /stats``
    The service's operational JSON snapshot (pool, quotas, latency).
``GET /healthz``
    Liveness: ``{"status": "ok"}`` once the server accepts sockets.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigError, ReproError, http_status_for
from ..obs.export import render_openmetrics
from ..obs.log import get_logger
from .protocol import QueryRequest
from .server import AnalyticsService

log = get_logger("repro.serve.http")

#: Largest accepted request body (a query is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: Dict[str, Any]) -> bytes:
    return _response(
        status, (json.dumps(payload) + "\n").encode("utf-8")
    )


def _error_response(exc: BaseException) -> bytes:
    return _json_response(
        http_status_for(exc),
        {"error": type(exc).__name__, "message": str(exc)},
    )


class HttpFrontend:
    """Bind an :class:`AnalyticsService` to a TCP listen socket."""

    def __init__(
        self,
        service: AnalyticsService,
        host: str = "127.0.0.1",
        port: int = 8100,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Start listening; returns the bound (host, port).

        ``port=0`` binds an ephemeral port (tests), reported back here.
        """
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        log.info("serve.listening", host=self.host, port=self.port)
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            payload = await self._respond(reader)
        except Exception as exc:  # last-resort: never drop a connection
            log.error("serve.request_failed", error=str(exc))
            payload = _error_response(exc)
        try:
            writer.write(payload)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> bytes:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                return _json_response(
                    400, {"error": "BadRequest",
                          "message": "malformed request line"}
                )
            method, path = parts[0].upper(), parts[1]
            headers = await self._read_headers(reader)
        except (ConnectionError, asyncio.IncompleteReadError):
            return b""
        if path.startswith("/query"):
            if method != "POST":
                return _json_response(
                    405, {"error": "MethodNotAllowed",
                          "message": "POST /query"}
                )
            return await self._handle_query(reader, headers)
        if method != "GET":
            return _json_response(
                405, {"error": "MethodNotAllowed",
                      "message": f"GET {path}"}
            )
        if path == "/metrics":
            return _response(
                200,
                render_openmetrics(self.service.registry).encode("utf-8"),
                content_type=(
                    "application/openmetrics-text; version=1.0.0; "
                    "charset=utf-8"
                ),
            )
        if path == "/stats":
            return _json_response(200, self.service.stats())
        if path == "/healthz":
            return _json_response(200, {"status": "ok"})
        return _json_response(
            404, {"error": "NotFound", "message": path}
        )

    @staticmethod
    async def _read_headers(
        reader: asyncio.StreamReader,
    ) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, _, value = line.decode("ascii", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()

    async def _handle_query(
        self,
        reader: asyncio.StreamReader,
        headers: Dict[str, str],
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            return _json_response(
                413, {"error": "PayloadTooLarge",
                      "message": f"body must be 0..{MAX_BODY_BYTES} bytes"}
            )
        body = await reader.readexactly(length) if length else b""
        try:
            try:
                decoded = json.loads(body.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ConfigError(
                    f"query body is not valid JSON: {exc}"
                ) from exc
            query = QueryRequest.from_dict(decoded)
            result = await self.service.submit(query)
        except ReproError as exc:
            return _error_response(exc)
        return _json_response(200, result.to_dict())


async def serve_forever(
    service: AnalyticsService,
    host: str = "127.0.0.1",
    port: int = 8100,
) -> None:
    """Run the daemon until cancelled (the ``repro serve`` body)."""
    frontend = HttpFrontend(service, host, port)
    await frontend.start()
    try:
        await frontend.serve_forever()
    except asyncio.CancelledError:  # graceful ^C path
        pass
    finally:
        await frontend.aclose()
