"""Minimal HTTP/1.1 front end for the analytics service.

Hand-rolled on ``asyncio`` streams — the repository deliberately takes
no web-framework dependency — and small on purpose: JSON bodies, one
connection per request (``Connection: close``).

Every request runs under a :mod:`repro.obs.context` trace context:
adopted from a valid inbound ``traceparent`` header, minted fresh
otherwise. The context's trace id appears in the ``traceparent`` /
``x-trace-id`` response headers, in the ``trace_id`` field of the query
result body, in every span the request emits, and in the structured
``http.access`` log line written per request.

Routes
------
``POST /query``
    Body: the :meth:`~repro.serve.protocol.QueryRequest.to_dict`
    schema. Response: a
    :meth:`~repro.serve.protocol.QueryResult.to_dict` payload.
    Failures map to statuses through
    :func:`repro.errors.http_status_for` — 429 over quota, 503 shed,
    504 deadline, 400 malformed — with a
    ``{"error": <class>, "message": <str>}`` body.
``POST /mutate``
    Body: the :meth:`~repro.serve.protocol.MutateRequest.to_dict`
    schema (``dataset`` plus ``inserts``/``deletes`` row lists).
    Applies the edge batch to the warm session's graph and responds
    with the mutation summary (new content key, edge count, reuse
    entries carried vs. invalidated). Same error mapping as
    ``/query``.
``GET /metrics``
    The process metrics registry as OpenMetrics text
    (:mod:`repro.obs.export`) — the Prometheus scrape target. SLO burn
    gauges are refreshed into the registry at scrape time, and the
    serve latency family carries exemplars naming request trace ids.
``GET /stats``
    The service's operational JSON snapshot (pool, quotas, latency,
    SLO windows, flight-recorder stats).
``GET /healthz``
    Liveness: ``{"status": "ok"}`` once the event loop answers at all.
``GET /readyz``
    Readiness: 200 when every check in
    :meth:`~repro.serve.server.AnalyticsService.readiness` passes,
    503 (with the per-check booleans) otherwise.
``GET /debug/flight``
    The flight recorder's tail-sampled trace ring
    (:meth:`~repro.obs.flight.FlightRecorder.dump`) — the payload
    ``repro trace-grep`` reads.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigError, ReproError, http_status_for
from ..obs import context as obs_context
from ..obs.export import render_openmetrics
from ..obs.log import get_logger
from ..obs.trace import get_tracer
from .protocol import MutateRequest, QueryRequest
from .server import AnalyticsService

log = get_logger("repro.serve.http")

#: Largest accepted request body (a query is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    ctx = obs_context.current()
    trace_headers = ""
    if ctx is not None:
        # Propagate the request's trace identity back to the caller:
        # the full W3C header plus the bare id for easy grepping.
        trace_headers = (
            f"traceparent: {ctx.to_traceparent()}\r\n"
            f"x-trace-id: {ctx.trace_id}\r\n"
        )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{trace_headers}"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: Dict[str, Any]) -> bytes:
    return _response(
        status, (json.dumps(payload) + "\n").encode("utf-8")
    )


def _error_response(exc: BaseException) -> bytes:
    return _json_response(
        http_status_for(exc),
        {"error": type(exc).__name__, "message": str(exc)},
    )


def _status_of(payload: bytes) -> int:
    """The status code of a response built by :func:`_response`."""
    try:
        return int(payload.split(b" ", 2)[1])
    except (IndexError, ValueError):
        return 0


class HttpFrontend:
    """Bind an :class:`AnalyticsService` to a TCP listen socket."""

    def __init__(
        self,
        service: AnalyticsService,
        host: str = "127.0.0.1",
        port: int = 8100,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Start listening; returns the bound (host, port).

        ``port=0`` binds an ephemeral port (tests), reported back here.
        """
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        log.info("serve.listening", host=self.host, port=self.port)
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            payload = await self._respond(reader)
        except Exception as exc:  # last-resort: never drop a connection
            log.error("serve.request_failed", error=str(exc))
            payload = _error_response(exc)
        try:
            writer.write(payload)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> bytes:
        start = time.perf_counter()
        try:
            request_line = await reader.readline()
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                return _json_response(
                    400, {"error": "BadRequest",
                          "message": "malformed request line"}
                )
            method, path = parts[0].upper(), parts[1]
            headers = await self._read_headers(reader)
        except (ConnectionError, asyncio.IncompleteReadError):
            return b""
        ctx = obs_context.from_traceparent(
            headers.get(obs_context.TRACEPARENT_HEADER)
        )
        token = obs_context.activate(ctx)
        meta = {"tenant": "-"}
        payload = b""
        try:
            with get_tracer().span(
                "http.request", category="http",
                method=method, path=path,
            ):
                payload = await self._dispatch(
                    method, path, reader, headers, meta
                )
            return payload
        except Exception as exc:
            # An error the typed query path did not absorb: record it
            # in the flight ring (unless the query path already closed
            # this trace — errored traces are always kept, so find()
            # is the duplicate guard) and answer with a mapped status.
            if self.service.flight.find(ctx.trace_id) is None:
                self.service.flight.finish(
                    ctx.trace_id,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                    latency_s=time.perf_counter() - start,
                    method=method,
                    path=path,
                )
            log.error(
                "serve.request_failed", method=method, path=path,
                error=str(exc),
            )
            payload = _error_response(exc)
            return payload
        finally:
            # The per-request structured access line — while the trace
            # context is still active so it carries the trace id.
            log.info(
                "http.access",
                method=method,
                path=path,
                status=_status_of(payload),
                tenant=meta["tenant"],
                duration_ms=round(
                    (time.perf_counter() - start) * 1000.0, 3
                ),
            )
            obs_context.restore(token)

    async def _dispatch(
        self,
        method: str,
        path: str,
        reader: asyncio.StreamReader,
        headers: Dict[str, str],
        meta: Dict[str, str],
    ) -> bytes:
        if path.startswith("/query"):
            if method != "POST":
                return _json_response(
                    405, {"error": "MethodNotAllowed",
                          "message": "POST /query"}
                )
            return await self._handle_query(reader, headers, meta)
        if path.startswith("/mutate"):
            if method != "POST":
                return _json_response(
                    405, {"error": "MethodNotAllowed",
                          "message": "POST /mutate"}
                )
            return await self._handle_mutate(reader, headers, meta)
        if method != "GET":
            return _json_response(
                405, {"error": "MethodNotAllowed",
                      "message": f"GET {path}"}
            )
        if path == "/metrics":
            # Burn-rate gauges are derived values; refresh them into
            # the registry at scrape time rather than per request.
            self.service.slo.export_to(self.service.registry)
            return _response(
                200,
                render_openmetrics(self.service.registry).encode("utf-8"),
                content_type=(
                    "application/openmetrics-text; version=1.0.0; "
                    "charset=utf-8"
                ),
            )
        if path == "/stats":
            return _json_response(200, self.service.stats())
        if path == "/healthz":
            return _json_response(200, {"status": "ok"})
        if path == "/readyz":
            ready, checks = self.service.readiness()
            return _json_response(
                200 if ready else 503,
                {"status": "ok" if ready else "unavailable",
                 "checks": checks},
            )
        if path == "/debug/flight":
            return _json_response(200, self.service.flight.dump())
        return _json_response(
            404, {"error": "NotFound", "message": path}
        )

    @staticmethod
    async def _read_headers(
        reader: asyncio.StreamReader,
    ) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, _, value = line.decode("ascii", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()

    async def _handle_query(
        self,
        reader: asyncio.StreamReader,
        headers: Dict[str, str],
        meta: Dict[str, str],
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            return _json_response(
                413, {"error": "PayloadTooLarge",
                      "message": f"body must be 0..{MAX_BODY_BYTES} bytes"}
            )
        body = await reader.readexactly(length) if length else b""
        try:
            try:
                decoded = json.loads(body.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ConfigError(
                    f"query body is not valid JSON: {exc}"
                ) from exc
            query = QueryRequest.from_dict(decoded)
            meta["tenant"] = query.tenant
            result = await self.service.submit(query)
        except ReproError as exc:
            return _error_response(exc)
        return _json_response(200, result.to_dict())

    async def _handle_mutate(
        self,
        reader: asyncio.StreamReader,
        headers: Dict[str, str],
        meta: Dict[str, str],
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            return _json_response(
                413, {"error": "PayloadTooLarge",
                      "message": f"body must be 0..{MAX_BODY_BYTES} bytes"}
            )
        body = await reader.readexactly(length) if length else b""
        try:
            try:
                decoded = json.loads(body.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ConfigError(
                    f"mutate body is not valid JSON: {exc}"
                ) from exc
            request = MutateRequest.from_dict(decoded)
            meta["tenant"] = request.tenant
            summary = await self.service.mutate(request)
        except ReproError as exc:
            return _error_response(exc)
        return _json_response(200, summary)


async def serve_forever(
    service: AnalyticsService,
    host: str = "127.0.0.1",
    port: int = 8100,
) -> None:
    """Run the daemon until cancelled (the ``repro serve`` body)."""
    frontend = HttpFrontend(service, host, port)
    await frontend.start()
    try:
        await frontend.serve_forever()
    except asyncio.CancelledError:  # graceful ^C path
        pass
    finally:
        await frontend.aclose()
