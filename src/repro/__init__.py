"""GaaS-X reproduction: sparse-aware crossbar PIM graph analytics.

A full-system Python reproduction of *GaaS-X: Graph Analytics
Accelerator Supporting Sparse Data Representation using Crossbar
Architectures* (ISCA 2020): the accelerator simulator, the array-level
crossbar models it is validated against, the GraphR/GRAM/CPU/GPU
baselines, the synthetic dataset registry, and an experiment harness
that regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import GaaSXEngine, load_dataset

    graph = load_dataset("WV")          # WikiVote-scale R-MAT stand-in
    engine = GaaSXEngine(graph)
    result = engine.pagerank(iterations=10)
    print(result.ranks[:5], result.stats.total_time_s)
"""

from .config import ArchConfig, GraphRConfig, TechnologyParams
from .core.engine import GaaSXEngine
from .core.micro import MicroGaaSX
from .core.stats import CFResult, PageRankResult, RunStats, TraversalResult
from .errors import ReproError
from .events import EventLog
from .graphs import (
    BipartiteGraph,
    COOMatrix,
    CSRMatrix,
    Graph,
    load_dataset,
    partition_graph,
)

__version__ = "1.0.0"

__all__ = [
    "ArchConfig",
    "GraphRConfig",
    "TechnologyParams",
    "GaaSXEngine",
    "MicroGaaSX",
    "RunStats",
    "PageRankResult",
    "TraversalResult",
    "CFResult",
    "EventLog",
    "ReproError",
    "Graph",
    "BipartiteGraph",
    "COOMatrix",
    "CSRMatrix",
    "load_dataset",
    "partition_graph",
    "__version__",
]
