"""Hardware event accounting.

Every model in this repository — the array-level crossbar simulators,
the vectorized GaaS-X engine, and the GraphR baseline — reports its work
as an :class:`EventLog`: how many CAM searches, MAC operations, cell
writes, converter activations, SFU scalar operations and buffer accesses
occurred. The energy ledger (:mod:`repro.energy.ledger`) later prices
these events; engines separately compute latency from their parallelism
model.

Keeping the event vocabulary in one place is what allows the test suite
to assert that the scalable vectorized engine and the slow-but-honest
array-level simulator count *exactly* the same events on small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class EventLog:
    """Cumulative counts of hardware events.

    Attributes
    ----------
    cam_searches:
        CAM search operations (one broadcast over one crossbar).
    mac_ops:
        Analog MAC operations (one selective accumulate on one
        crossbar's bit-line set).
    mac_rows_accumulated:
        Total rows summed across all MAC ops; with ``mac_ops`` this
        gives the average, and :attr:`mac_rows_hist` the distribution
        (Figure 13).
    mac_cell_ops:
        Cell-level multiply events — rows engaged x columns engaged.
        This is the "computations" axis of Figure 5: a dense mapping
        engages every cell of a tile, a sparse mapping only real edges.
    cell_writes / row_writes:
        MAC-side ReRAM programming events, counted per physical cell
        (value cells x bit slices) and per row-level write pulse. These
        are the "writes" axis of Figure 5.
    cam_cell_writes / cam_row_writes:
        CAM-side programming events ((src, dst) pair loads; a TCAM bit
        is a complementary cell pair). Tracked separately so the
        dense-vs-sparse value-write comparison stays clean.
    adc_conversions / dac_conversions:
        Converter activations.
    adc_saturations:
        ADC samples whose analog input exceeded full scale and clipped
        to ``max_code``. Only the quantized array models digitize real
        values, so exact-mode runs keep this at zero.
    sfu_ops:
        Scalar special-function operations (min, add, mul, compare).
    buffer_reads / buffer_writes:
        On-chip SRAM buffer accesses (attribute/input/output buffers).
    """

    cam_searches: int = 0
    mac_ops: int = 0
    mac_rows_accumulated: int = 0
    mac_cell_ops: int = 0
    cell_writes: int = 0
    row_writes: int = 0
    cam_cell_writes: int = 0
    cam_row_writes: int = 0
    adc_conversions: int = 0
    adc_saturations: int = 0
    dac_conversions: int = 0
    sfu_ops: int = 0
    buffer_reads: int = 0
    buffer_writes: int = 0
    #: histogram of rows-accumulated per MAC op; index i = i rows.
    mac_rows_hist: np.ndarray = field(
        default_factory=lambda: np.zeros(1, dtype=np.int64)
    )

    # ------------------------------------------------------------------
    def record_mac(self, rows_accumulated: np.ndarray | int, cols: int = 1) -> None:
        """Record one or many MAC operations.

        ``rows_accumulated`` is the number of rows summed per operation
        (scalar or array of per-op counts); ``cols`` the number of value
        columns engaged by each of those operations.
        """
        rows = np.atleast_1d(np.asarray(rows_accumulated, dtype=np.int64))
        if rows.size == 0:
            return
        self.mac_ops += int(rows.size)
        total_rows = int(rows.sum())
        self.mac_rows_accumulated += total_rows
        self.mac_cell_ops += total_rows * int(cols)
        hist = np.bincount(rows)
        self._grow_hist(hist.size)
        self.mac_rows_hist[: hist.size] += hist

    def _grow_hist(self, size: int) -> None:
        if size > self.mac_rows_hist.size:
            grown = np.zeros(size, dtype=np.int64)
            grown[: self.mac_rows_hist.size] = self.mac_rows_hist
            self.mac_rows_hist = grown

    # ------------------------------------------------------------------
    def merge(self, other: "EventLog") -> "EventLog":
        """Accumulate ``other`` into this log (returns self)."""
        self.cam_searches += other.cam_searches
        self.mac_ops += other.mac_ops
        self.mac_rows_accumulated += other.mac_rows_accumulated
        self.mac_cell_ops += other.mac_cell_ops
        self.cell_writes += other.cell_writes
        self.row_writes += other.row_writes
        self.cam_cell_writes += other.cam_cell_writes
        self.cam_row_writes += other.cam_row_writes
        self.adc_conversions += other.adc_conversions
        self.adc_saturations += other.adc_saturations
        self.dac_conversions += other.dac_conversions
        self.sfu_ops += other.sfu_ops
        self.buffer_reads += other.buffer_reads
        self.buffer_writes += other.buffer_writes
        self._grow_hist(other.mac_rows_hist.size)
        self.mac_rows_hist[: other.mac_rows_hist.size] += other.mac_rows_hist
        return self

    def __iadd__(self, other: "EventLog") -> "EventLog":
        return self.merge(other)

    def scaled(self, factor: int) -> "EventLog":
        """Return a copy with every counter multiplied by ``factor``.

        Used when one accounted pass repeats identically (PageRank
        iterations process every destination every time).
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        log = EventLog(**{k: v * factor for k, v in self.as_dict().items()})
        log.mac_rows_hist = self.mac_rows_hist * factor
        return log

    # ------------------------------------------------------------------
    def rows_hist_cdf(self) -> np.ndarray:
        """Cumulative fraction of MAC ops accumulating <= i rows.

        Index 0 corresponds to 0 rows (should stay empty in practice);
        this is the Figure 13 curve.
        """
        total = self.mac_rows_hist.sum()
        if total == 0:
            return np.zeros(self.mac_rows_hist.size)
        return np.cumsum(self.mac_rows_hist) / total

    def rows_occupancy(self, limit: int) -> dict:
        """Row-utilization statistics against an accumulation bound.

        ``limit`` is the architecture's MAC accumulation cap (16 rows
        in Table I — the ADC bound). Derived entirely from
        :attr:`mac_rows_hist` so merged and scaled logs stay
        consistent. Returns:

        * ``mean_rows`` — average rows engaged per MAC operation;
        * ``occupancy`` — ``mean_rows / limit``, the fraction of the
          accumulation window actually used;
        * ``full_frac`` — fraction of MAC ops engaging >= ``limit``
          rows (exactly ``limit`` when the engine enforces the cap);
        * ``cdf_at_limit`` — :meth:`rows_hist_cdf` evaluated at
          ``limit`` (1.0 whenever the cap is respected).

        An empty log yields all zeros.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        hist = self.mac_rows_hist
        total = int(hist.sum())
        if total == 0:
            return {
                "mean_rows": 0.0,
                "occupancy": 0.0,
                "full_frac": 0.0,
                "cdf_at_limit": 0.0,
            }
        mean_rows = float(
            (np.arange(hist.size) * hist).sum() / total
        )
        full = int(hist[min(limit, hist.size):].sum())
        cdf = self.rows_hist_cdf()
        cdf_at_limit = float(cdf[limit]) if limit < cdf.size else 1.0
        return {
            "mean_rows": mean_rows,
            "occupancy": mean_rows / limit,
            "full_frac": full / total,
            "cdf_at_limit": cdf_at_limit,
        }

    def as_dict(self) -> dict:
        """Scalar counters as a plain dict (histogram excluded)."""
        return {
            "cam_searches": self.cam_searches,
            "mac_ops": self.mac_ops,
            "mac_rows_accumulated": self.mac_rows_accumulated,
            "mac_cell_ops": self.mac_cell_ops,
            "cell_writes": self.cell_writes,
            "row_writes": self.row_writes,
            "cam_cell_writes": self.cam_cell_writes,
            "cam_row_writes": self.cam_row_writes,
            "adc_conversions": self.adc_conversions,
            "adc_saturations": self.adc_saturations,
            "dac_conversions": self.dac_conversions,
            "sfu_ops": self.sfu_ops,
            "buffer_reads": self.buffer_reads,
            "buffer_writes": self.buffer_writes,
        }

    def counters_equal(self, other: "EventLog") -> bool:
        """True when all scalar counters and histograms agree."""
        if self.as_dict() != other.as_dict():
            return False
        size = max(self.mac_rows_hist.size, other.mac_rows_hist.size)
        a = np.zeros(size, dtype=np.int64)
        b = np.zeros(size, dtype=np.int64)
        a[: self.mac_rows_hist.size] = self.mac_rows_hist
        b[: other.mac_rows_hist.size] = other.mac_rows_hist
        return bool(np.array_equal(a, b))

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"EventLog({fields})"
