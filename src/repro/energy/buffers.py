"""Simplified CACTI-style on-chip SRAM buffer model.

The paper models its input/output/attribute buffers with CACTI at
32 nm. Table I's three buffer rows scale exactly linearly in capacity
(0.4e-3 mm^2 and 0.545 mW per KB), so the area/power model here is that
linear fit; dynamic access energy uses the usual square-root-of-capacity
CACTI scaling anchored at ~1 pJ for a 64 KB array.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Linear fits to Table I buffer rows (32 nm CACTI).
AREA_MM2_PER_KB = 0.4e-3
POWER_MW_PER_KB = 0.545
#: Access energy anchor: ~1 pJ per read of a 64 KB SRAM at 32 nm.
ACCESS_ENERGY_J_AT_64KB = 1.0e-12


@dataclass(frozen=True)
class SRAMBuffer:
    """An on-chip SRAM buffer characterized by its capacity."""

    name: str
    size_kb: float

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise ConfigError("buffer capacity must be positive")

    @property
    def area_mm2(self) -> float:
        """Silicon area (linear CACTI fit)."""
        return AREA_MM2_PER_KB * self.size_kb

    @property
    def power_mw(self) -> float:
        """Operating power (linear CACTI fit)."""
        return POWER_MW_PER_KB * self.size_kb

    @property
    def access_energy_j(self) -> float:
        """Dynamic energy of one access (sqrt-capacity scaling)."""
        return ACCESS_ENERGY_J_AT_64KB * (self.size_kb / 64.0) ** 0.5


#: The three buffers of the GaaS-X design (Table I).
INPUT_BUFFER = SRAMBuffer("input", 16)
OUTPUT_BUFFER = SRAMBuffer("output", 64)
ATTRIBUTE_BUFFER = SRAMBuffer("attribute", 512)
