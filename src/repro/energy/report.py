"""Regeneration of Table I: the accelerator's component inventory.

The table is configuration-derived where possible (buffer rows come
from the CACTI-style model, crossbar counts from :class:`ArchConfig`)
and anchored to the paper's published per-component figures elsewhere,
so changing the architecture configuration changes the printed table.
"""

from __future__ import annotations

from typing import List, Tuple

from ..config import (
    ArchConfig,
    TABLE_I_COMPONENTS,
    TABLE_I_TOTAL_AREA_MM2,
    TABLE_I_TOTAL_POWER_W,
)
from .buffers import ATTRIBUTE_BUFFER, INPUT_BUFFER, OUTPUT_BUFFER, SRAMBuffer


def component_rows(config: ArchConfig | None = None) -> List[Tuple[str, str, float, float]]:
    """(name, configuration, area mm^2, power mW) rows for the design.

    Crossbar/converter rows scale with the configured crossbar count
    relative to the paper's 2048; buffer rows come from the SRAM model.
    """
    config = config if config is not None else ArchConfig()
    scale = config.num_crossbars / 2048.0
    rows: List[Tuple[str, str, float, float]] = []
    buffer_models = {
        "Output buffer": OUTPUT_BUFFER,
        "Input buffer": INPUT_BUFFER,
        "Attribute buffer": ATTRIBUTE_BUFFER,
    }
    for spec in TABLE_I_COMPONENTS:
        if spec.name in buffer_models:
            model: SRAMBuffer = buffer_models[spec.name]
            rows.append(
                (spec.name, f"{int(model.size_kb)} KB", model.area_mm2, model.power_mw)
            )
        elif spec.name in ("Central controller", "SFU"):
            rows.append((spec.name, spec.configuration, spec.area_mm2, spec.power_mw))
        else:
            rows.append(
                (
                    spec.name,
                    spec.configuration,
                    spec.area_mm2 * scale,
                    spec.power_mw * scale,
                )
            )
    return rows


def totals(config: ArchConfig | None = None) -> Tuple[float, float]:
    """(area mm^2, power W) totals for the configured design."""
    rows = component_rows(config)
    area = sum(r[2] for r in rows)
    power_w = sum(r[3] for r in rows) / 1000.0
    return area, power_w


def table1_report(config: ArchConfig | None = None) -> str:
    """Render the component table in the paper's Table I layout."""
    rows = component_rows(config)
    area, power = totals(config)
    lines = [
        f"{'Component':<20} {'Configuration':<24} {'Area (mm^2)':>12} {'Power (mW)':>11}",
        "-" * 69,
    ]
    for name, conf, a, p in rows:
        lines.append(f"{name:<20} {conf:<24} {a:>12.5f} {p:>11.2f}")
    lines.append("-" * 69)
    lines.append(f"{'Total':<45} {area:>12.2f} {power * 1000:>11.2f}")
    lines.append(
        f"(paper Table I totals: {TABLE_I_TOTAL_AREA_MM2:.2f} mm^2, "
        f"{TABLE_I_TOTAL_POWER_W:.2f} W)"
    )
    return "\n".join(lines)
