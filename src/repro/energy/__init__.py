"""Energy, latency and area accounting for the crossbar accelerators."""

from .buffers import SRAMBuffer
from .ledger import EnergyBreakdown, EnergyLedger
from .report import table1_report

__all__ = ["SRAMBuffer", "EnergyBreakdown", "EnergyLedger", "table1_report"]
