"""Pricing event logs into joules.

``energy = sum(events x per-event dynamic energy) + static power x
runtime`` — the same roll-up the paper's simulator performs with its
SPICE/CACTI-derived constants (Section V-A). Per-event constants live
in :class:`repro.config.TechnologyParams`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import TechnologyParams
from ..errors import ConfigError
from ..events import EventLog


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-category dynamic energies plus the static charge (joules)."""

    cam_j: float
    mac_j: float
    write_j: float
    adc_j: float
    dac_j: float
    sfu_j: float
    buffer_j: float
    static_j: float

    @property
    def dynamic_j(self) -> float:
        """Total dynamic energy."""
        return (
            self.cam_j
            + self.mac_j
            + self.write_j
            + self.adc_j
            + self.dac_j
            + self.sfu_j
            + self.buffer_j
        )

    @property
    def total_j(self) -> float:
        """Dynamic plus static energy."""
        return self.dynamic_j + self.static_j

    def as_dict(self) -> Dict[str, float]:
        """Category -> joules mapping, including totals."""
        return {
            "cam": self.cam_j,
            "mac": self.mac_j,
            "write": self.write_j,
            "adc": self.adc_j,
            "dac": self.dac_j,
            "sfu": self.sfu_j,
            "buffer": self.buffer_j,
            "static": self.static_j,
            "total": self.total_j,
        }


class EnergyLedger:
    """Prices :class:`~repro.events.EventLog` instances."""

    def __init__(self, tech: TechnologyParams | None = None) -> None:
        self.tech = tech if tech is not None else TechnologyParams()

    def price(self, events: EventLog, runtime_s: float) -> EnergyBreakdown:
        """Convert an event log plus a runtime into an energy breakdown."""
        if runtime_s < 0:
            raise ConfigError("runtime must be non-negative")
        t = self.tech
        return EnergyBreakdown(
            cam_j=events.cam_searches * t.cam_search_energy_j,
            mac_j=events.mac_ops * t.mac_energy_j,
            write_j=(
                events.cell_writes * t.write_cell_energy_j
                + events.cam_cell_writes * t.cam_cell_write_energy_j
            ),
            adc_j=events.adc_conversions * t.adc_energy_j,
            dac_j=events.dac_conversions * t.dac_energy_j,
            sfu_j=events.sfu_ops * t.sfu_op_energy_j,
            buffer_j=(events.buffer_reads + events.buffer_writes)
            * t.buffer_access_energy_j,
            static_j=t.static_power_w * runtime_s,
        )

    def average_power_w(self, events: EventLog, runtime_s: float) -> float:
        """Average power over the run (guards the zero-runtime case)."""
        if runtime_s <= 0:
            return 0.0
        return self.price(events, runtime_s).total_j / runtime_s
