#!/usr/bin/env python3
"""Movie recommendation: collaborative filtering on the Netflix stand-in.

Trains the paper's CF kernel (Equation 5) on the GaaS-X model,
tracks RMSE across epochs, and produces top-N recommendations for a
few users — the workload of the paper's Figure 17.

Run:  python examples/movie_recommender.py
"""

import numpy as np

from repro import GaaSXEngine
from repro.graphs.generators import bipartite_ratings


def main() -> None:
    # A small Netflix-like catalogue so the demo trains in seconds.
    data = bipartite_ratings(
        num_users=1200, num_items=300, num_ratings=24_000,
        seed=8, name="movies",
    )
    print(f"Rating data: {data}")
    r = data.ratings

    engine = GaaSXEngine(data)
    print("\nTraining (synchronous item/user epochs, Equation 5):")
    result = None
    for epochs in (1, 5, 15, 40):
        result = engine.collaborative_filtering(
            num_features=16, epochs=epochs,
            learning_rate=0.0015, regularization=0.05, seed=2,
        )
        rmse = result.rmse(r.rows, r.cols, r.data)
        print(f"  epochs {epochs:>3}: training RMSE {rmse:.4f}")

    stats = result.stats
    print(
        f"\nModelled accelerator cost of the final run: "
        f"{stats.total_time_s * 1e3:.3f} ms, "
        f"{stats.total_energy_j * 1e3:.3f} mJ"
    )

    # Recommend: highest predicted rating among unseen items.
    rated = {}
    for u, i in zip(r.rows, r.cols):
        rated.setdefault(int(u), set()).add(int(i))
    print("\nTop-3 recommendations:")
    for user in (0, 1, 2):
        scores = result.user_features[user] @ result.item_features.T
        seen = rated.get(user, set())
        order = [i for i in np.argsort(-scores) if i not in seen][:3]
        pretty = ", ".join(
            f"item {i} ({scores[i]:.2f})" for i in order
        )
        print(f"  user {user}: {pretty}")


if __name__ == "__main__":
    main()
