#!/usr/bin/env python3
"""Social-network analysis with the extension kernels: WCC + GCN.

The paper defers graph neural networks as future work (Section V-B);
this example runs that deferred workload. A scale-free "social
network" is first decomposed into weakly connected components on the
accelerator, then a two-layer GCN forward pass computes structural
node embeddings whose nearest neighbours are inspected.

Run:  python examples/social_network_gnn.py
"""

import numpy as np

from repro import GaaSXEngine
from repro.graphs.generators import rmat


def main() -> None:
    network = rmat(2000, 16000, a=0.7, b=0.12, c=0.12, seed=33,
                   name="social")
    engine = GaaSXEngine(network)
    print(f"Network: {network}")

    # Phase 1: connectivity — both CAM fields searched per superstep.
    wcc = engine.wcc()
    sizes = wcc.component_sizes()
    print(
        f"\nWCC: {wcc.num_components} components in {wcc.supersteps} "
        f"supersteps; giant component covers "
        f"{sizes[0] / network.num_vertices:.0%} of vertices"
    )
    print(
        f"  modelled cost: {wcc.stats.total_time_s * 1e6:.1f} us, "
        f"{wcc.stats.total_energy_j * 1e6:.1f} uJ"
    )

    # Phase 2: GCN embeddings. Input features: degree statistics.
    out_deg = network.out_degrees().astype(float)
    in_deg = network.in_degrees().astype(float)
    features = np.stack(
        [
            np.log1p(out_deg),
            np.log1p(in_deg),
            (out_deg > 0).astype(float),
            (in_deg > 0).astype(float),
        ],
        axis=1,
    )
    rng = np.random.default_rng(5)
    weights = [
        rng.normal(size=(4, 16)) * 0.5,
        rng.normal(size=(16, 8)) * 0.25,
    ]
    gnn = engine.gnn_forward(features, weights)
    print(
        f"\nGCN: {gnn.num_layers}-layer forward pass -> "
        f"{gnn.embeddings.shape[1]}-d embeddings"
    )
    print(
        f"  modelled cost: {gnn.stats.total_time_s * 1e6:.1f} us, "
        f"{gnn.stats.total_energy_j * 1e6:.1f} uJ, "
        f"{gnn.stats.events.mac_ops:,} MAC ops"
    )

    # Nearest neighbours in embedding space for the top hub.
    hub = int(np.argmax(in_deg))
    emb = gnn.embeddings
    norms = np.linalg.norm(emb, axis=1) + 1e-12
    sims = (emb @ emb[hub]) / (norms * norms[hub])
    sims[hub] = -np.inf
    nearest = np.argsort(-sims)[:5]
    print(f"\nVertices most similar to hub {hub} (cosine in GCN space):")
    for v in nearest:
        print(
            f"  vertex {v:>5}  similarity {sims[v]:.3f}  "
            f"in-degree {int(in_deg[v])}"
        )


if __name__ == "__main__":
    main()
