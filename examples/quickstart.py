#!/usr/bin/env python3
"""Quickstart: run PageRank on GaaS-X and read the cost model.

Generates the WikiVote-scale stand-in graph, executes PageRank on the
simulated accelerator, checks the result against the golden reference,
and prints the modelled time/energy with the hardware event breakdown.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GaaSXEngine, load_dataset
from repro.baselines import reference


def main() -> None:
    graph = load_dataset("WV", profile="bench")
    print(f"Graph: {graph}")

    engine = GaaSXEngine(graph)
    result = engine.pagerank(alpha=0.85, iterations=10)

    golden = reference.pagerank(graph, alpha=0.85, iterations=10)
    assert np.allclose(result.ranks, golden), "engine diverged from reference"
    top = np.argsort(-result.ranks)[:5]
    print("\nTop-5 ranked vertices:")
    for v in top:
        print(f"  vertex {v:>6}  rank {result.ranks[v]:.3f}")

    stats = result.stats
    print(f"\nModelled accelerator execution ({result.iterations} iterations):")
    print(f"  load time     {stats.load_time_s * 1e6:10.2f} us")
    print(f"  compute time  {stats.compute_time_s * 1e6:10.2f} us")
    print(f"  total energy  {stats.total_energy_j * 1e6:10.2f} uJ")
    print(f"  avg power     {stats.total_energy_j / stats.total_time_s:10.2f} W")

    print("\nHardware events:")
    for name, value in stats.events.as_dict().items():
        if value:
            print(f"  {name:<22} {value:>14,}")

    hist = stats.events.mac_rows_hist
    frac_one = hist[1] / hist.sum()
    print(
        f"\n{frac_one:.0%} of MAC operations accumulated a single row "
        "(the paper's Figure 13 sparsity signature)."
    )


if __name__ == "__main__":
    main()
