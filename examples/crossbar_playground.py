#!/usr/bin/env python3
"""Crossbar playground: the paper's Figure 7 walked through by hand.

Drives the *array-level* models directly — a real ternary CAM search
producing a hit vector, and a real selective analog MAC over the
enabled rows, first in exact float mode and then through the honest
quantized pipeline (2-bit cells, bit-serial inputs, 6-bit ADC).

Run:  python examples/crossbar_playground.py
"""

import numpy as np

from repro.events import EventLog
from repro.xbar import EdgeCam, FixedPointFormat, MacCrossbar

# Figure 7(a): (src, dst, weight) triples of the example graph.
EDGES = [
    (1, 2, 6.0), (3, 2, 5.0), (4, 2, 8.0), (1, 3, 4.0),
    (5, 3, 6.0), (2, 4, 4.0), (3, 4, 2.0), (5, 4, 7.0),
]


def main() -> None:
    events = EventLog()
    src = np.array([e[0] for e in EDGES])
    dst = np.array([e[1] for e in EDGES])
    weights = np.array([e[2] for e in EDGES])

    print("Loading Figure 7's edges into a CAM/MAC crossbar pair...")
    cam = EdgeCam(rows=16, vertex_bits=8, events=events)
    cam.load_edges(src, dst)
    mac = MacCrossbar(rows=16, cols=2, events=events)
    mac.write(np.arange(len(EDGES)), np.zeros(len(EDGES), dtype=int), weights)

    print("\nKernel: sum the weights of all edges arriving at vertex 2.")
    hits = cam.search_dst(2)
    print(f"  CAM hit vector: {hits[:len(EDGES)].astype(int)}")
    print(f"  (rows {list(np.flatnonzero(hits))} -> edges "
          f"{[EDGES[i][:2] for i in np.flatnonzero(hits)]})")

    total = mac.mac(np.ones(16), row_mask=hits, col_mask=np.array([0]))
    print(f"  selective MAC result: {total[0]:.1f}   (6 + 5 + 8 = 19)")

    print("\nSame kernel through the quantized pipeline "
          "(2-bit cells, 1-bit input phases, 6-bit ADC):")
    quant = MacCrossbar(
        rows=16, cols=2, exact=False,
        value_format=FixedPointFormat(16, 8),
    )
    quant.write(
        np.arange(len(EDGES)), np.zeros(len(EDGES), dtype=int), weights
    )
    q_total = quant.mac(np.ones(16), row_mask=hits, col_mask=np.array([0]))
    print(f"  quantized MAC result: {q_total[0]:.4f}")

    print("\nHardware events charged so far:")
    for name, value in events.as_dict().items():
        if value:
            print(f"  {name:<20} {value:>8}")

    print(
        "\nEvery search above enabled at most "
        f"{int(events.mac_rows_hist.nonzero()[0].max())} rows — the "
        "sparsity that lets GaaS-X cap each MAC at 16 rows and use a "
        "6-bit ADC (Section V-A)."
    )


if __name__ == "__main__":
    main()
