#!/usr/bin/env python3
"""Design-space exploration of the GaaS-X architecture.

Uses the public configuration API to sweep the two design choices the
paper fixes — the rows-accumulated-per-MAC limit (16, bounding the ADC
to 6 bits) and the number of parallel crossbars (2048) — and shows how
PageRank time/energy respond. This is the workflow an architect
adopting the library would actually run.

Run:  python examples/accelerator_design_space.py
"""

import numpy as np

from repro import ArchConfig, GaaSXEngine, load_dataset


def required_adc_bits(limit: int, cell_bits: int = 2) -> int:
    """Worst-case per-phase bit-line sum -> ADC resolution."""
    return int(np.ceil(np.log2(limit * (2**cell_bits - 1) + 1)))


def main() -> None:
    graph = load_dataset("WV", profile="bench")
    print(f"Workload: 10 PageRank iterations on {graph}\n")

    print("Sweep 1: MAC accumulation limit (paper picks 16 -> 6-bit ADC)")
    print(f"  {'limit':>6} {'ADC bits':>9} {'time (us)':>11} {'energy (uJ)':>12}")
    for limit in (2, 4, 8, 16, 32, 64, 128):
        config = ArchConfig(mac_accumulate_limit=limit)
        stats = GaaSXEngine(graph, config=config).pagerank(iterations=10).stats
        print(
            f"  {limit:>6} {required_adc_bits(limit):>9} "
            f"{stats.total_time_s * 1e6:>11.1f} "
            f"{stats.total_energy_j * 1e6:>12.2f}"
        )
    print(
        "  -> beyond 16 the returns vanish (hits are almost always\n"
        "     small, Figure 13) while the ADC cost grows exponentially.\n"
    )

    print("Sweep 2: parallel crossbar count (paper picks 2048)")
    print(f"  {'xbars':>6} {'time (us)':>11} {'speedup':>9}")
    times = {}
    for count in (128, 256, 512, 1024, 2048, 4096):
        config = ArchConfig(num_crossbars=count)
        stats = GaaSXEngine(graph, config=config).pagerank(iterations=10).stats
        times[count] = stats.total_time_s
        print(
            f"  {count:>6} {stats.total_time_s * 1e6:>11.1f} "
            f"{times[128] / stats.total_time_s:>8.1f}x"
        )
    print(
        "  -> scaling saturates once the whole graph fits one batch;\n"
        "     extra arrays then only idle."
    )


if __name__ == "__main__":
    main()
