#!/usr/bin/env python3
"""Route planning: SSSP on a road-network-like grid.

The paper motivates SSSP with "route maps, robotics and VLSI design"
(Section IV). This example builds a weighted planar grid standing in
for a city road network, runs SSSP on the GaaS-X model, reconstructs a
route, and compares the accelerator against the GraphR baseline and
the CPU/GPU software models on the identical workload.

Run:  python examples/route_planner.py
"""

import numpy as np

from repro import GaaSXEngine
from repro.baselines import (
    GraphREngine,
    GridGraphModel,
    GunrockModel,
    trace_traversal,
)
from repro.graphs.generators import grid_2d

WIDTH, HEIGHT = 48, 48


def reconstruct_route(graph, distances, source, target):
    """Walk backwards from target along tight edges."""
    csr_rev = graph.reversed().csr()
    route = [target]
    current = target
    while current != source and np.isfinite(distances[current]):
        preds, weights = csr_rev.row(current)
        tight = [
            int(p)
            for p, w in zip(preds, weights)
            if abs(distances[p] + w - distances[current]) < 1e-9
        ]
        if not tight:
            break
        current = min(tight, key=lambda p: distances[p])
        route.append(current)
    return list(reversed(route))


def main() -> None:
    city = grid_2d(WIDTH, HEIGHT, seed=20, name="city-grid")
    print(f"Road network: {city} ({WIDTH}x{HEIGHT} intersections)")

    source = 0  # north-west corner
    target = WIDTH * HEIGHT - 1  # south-east corner

    engine = GaaSXEngine(city)
    result = engine.sssp(source)
    print(
        f"\nShortest travel cost {source} -> {target}: "
        f"{result.distances[target]:.0f} "
        f"(found in {result.supersteps} wavefront supersteps)"
    )

    route = reconstruct_route(city, result.distances, source, target)
    print(f"Route length: {len(route)} intersections")
    corners = [route[i] for i in range(0, len(route), max(1, len(route) // 8))]
    print("Waypoints:", " -> ".join(f"({v % WIDTH},{v // WIDTH})" for v in corners))

    # Platform comparison on the identical workload.
    graphr = GraphREngine(city).sssp(source)
    trace = trace_traversal(city, source, weighted=True)
    cpu = GridGraphModel().run(trace)
    gpu = GunrockModel().run(trace)

    print("\nPlatform comparison (modelled):")
    rows = [
        ("GaaS-X", result.stats.total_time_s, result.stats.total_energy_j),
        ("GraphR", graphr.stats.total_time_s, graphr.stats.total_energy_j),
        ("Gunrock (GPU)", gpu.time_s, gpu.energy_j),
        ("GridGraph (CPU)", cpu.time_s, cpu.energy_j),
    ]
    base_t, base_e = rows[0][1], rows[0][2]
    print(f"  {'platform':<16} {'time':>12} {'energy':>12} {'slowdown':>9}")
    for name, t, e in rows:
        print(
            f"  {name:<16} {t * 1e6:>10.1f}us {e * 1e6:>10.1f}uJ "
            f"{t / base_t:>8.1f}x"
        )


if __name__ == "__main__":
    main()
